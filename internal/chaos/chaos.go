// Package chaos is SoundBoost's deterministic fault-injection layer: a
// seed-driven schedule of message- and transport-level faults that wraps
// the two places telemetry crosses a trust boundary — mavbus publishers
// (Injector, Publisher) and the HTTP client (Transport, in http.go).
//
// The design contract is determinism: every fault decision is drawn from
// a single seeded PRNG in publication order, so the same seed over the
// same message sequence injects byte-identical faults on every run. That
// is what lets the chaos soak (`soundboost chaos`, scripts/chaos_smoke.sh)
// assert "same seed ⇒ same verdicts" across whole process runs, the
// systematic-perturbation methodology EchoHawk-style session attacks and
// drift-evasive GNSS spoofing argue for: detectors must stay sound under
// gradual, correlated corruption, not just clean-data unit tests.
//
// Message faults (Rates, applied per message in a fixed decision order):
//
//   - drop: the message never reaches the bus
//   - dup: the message is published twice
//   - reorder: the message is held back and published after its successor
//   - corrupt_nan / truncate / bit_flip: payload corruption via the
//     caller-supplied CorruptFunc (the typed mutators live in
//     internal/stream, which owns the payload types — chaos itself never
//     imports stream, so stream.Replay can inject through this package)
//   - freeze: a stuck-at sensor episode — payload values latch at the
//     previous message's for FreezeSeconds while timestamps advance
//   - clock skew / jitter: timestamps drift by SkewPerSecond·t plus a
//     uniform ±JitterSeconds perturbation
//   - latency: a burst sleep before publication (Sleep is injectable so
//     tests and as-fast-as-possible soaks stay instant)
//   - cutoff: mid-flight truncation — everything at or after
//     CutoffSeconds is silently dropped
//   - poison: after PoisonAfter accepted messages a PoisonPill payload is
//     published; the streaming engine treats it as fatal and panics,
//     which is the deterministic trigger for the server's per-session
//     panic-isolation domain
//
// Every injected fault is counted twice: exactly, per injector
// (Counts(), for the soak's accounting invariants) and process-wide in
// obs as chaos.injected.<kind> so injected faults can be reconciled
// against the stream.*/server.* counters that observe them.
package chaos

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"soundboost/internal/mavbus"
	"soundboost/internal/obs"
)

// Kind names one fault family, as counted in Counts() and in the
// chaos.injected.<kind> obs counters.
type Kind string

// Message-plane fault kinds (Injector). HTTP-plane kinds live in http.go.
const (
	KindDrop       Kind = "drop"
	KindDup        Kind = "dup"
	KindReorder    Kind = "reorder"
	KindCorruptNaN Kind = "corrupt_nan"
	KindTruncate   Kind = "truncate"
	KindBitFlip    Kind = "bit_flip"
	KindFreeze     Kind = "freeze"
	KindRetime     Kind = "retime"
	KindLatency    Kind = "latency"
	KindCutoff     Kind = "cutoff"
	KindPoison     Kind = "poison"
)

// Kinds lists every message-plane fault kind in stable order (for
// deterministic report output).
var Kinds = []Kind{
	KindDrop, KindDup, KindReorder, KindCorruptNaN, KindTruncate,
	KindBitFlip, KindFreeze, KindRetime, KindLatency, KindCutoff, KindPoison,
}

// PoisonPill is the crash-test payload: consumers that treat engine
// integrity as fatal (internal/stream) panic on it, which is how the
// soak exercises the server's per-session panic isolation without a
// bespoke test seam. It is never serialized over the wire.
type PoisonPill struct{}

// Corruption selects which payload mutation a CorruptFunc should apply.
type Corruption int

const (
	// CorruptNaN poisons one value in the payload with NaN.
	CorruptNaN Corruption = iota
	// CorruptTruncate shortens the payload (audio frames lose their
	// tail; fixed-size payloads report not-applicable).
	CorruptTruncate
	// CorruptBitFlip flips one mantissa bit in one payload value.
	CorruptBitFlip
	// CorruptFreeze rebuilds cur with prev's sensor values (stuck-at)
	// while keeping cur's timestamps.
	CorruptFreeze
	// CorruptRetime shifts every timestamp in the payload by dt seconds.
	CorruptRetime
)

// CorruptFunc applies one typed payload mutation. cur is the payload to
// mutate, prev the previous payload seen on the same topic (freeze), dt
// the time shift (retime). It returns the mutated payload and whether
// the mutation was applicable; a false return must leave cur unused so
// the injector can skip the fault without counting it. Implementations
// must not mutate cur or prev in place — messages may be duplicated.
type CorruptFunc func(rng *rand.Rand, kind Corruption, cur, prev any, dt float64) (any, bool)

// Rates are the per-message fault probabilities for one topic, each in
// [0, 1]. The zero value injects nothing.
type Rates struct {
	Drop    float64
	Dup     float64
	Reorder float64
	// NaN, Truncate, BitFlip are payload-corruption probabilities,
	// evaluated in that order (at most one corruption per message).
	NaN      float64
	Truncate float64
	BitFlip  float64
	// Freeze is the probability a stuck-at episode starts at this
	// message; the episode lasts Config.FreezeSeconds.
	Freeze float64
}

func (r Rates) zero() bool {
	return r.Drop == 0 && r.Dup == 0 && r.Reorder == 0 &&
		r.NaN == 0 && r.Truncate == 0 && r.BitFlip == 0 && r.Freeze == 0
}

// Config is one seeded fault schedule.
type Config struct {
	// Seed drives every decision; the same seed over the same message
	// sequence reproduces the same faults.
	Seed int64
	// Default applies to topics without a PerTopic override.
	Default Rates
	// PerTopic overrides Default wholesale for the named topics.
	PerTopic map[string]Rates
	// FreezeSeconds is the stuck-at episode length (default 1 s when a
	// Freeze rate is set).
	FreezeSeconds float64
	// SkewPerSecond drifts timestamps by SkewPerSecond·t — gradual,
	// correlated corruption rather than a step.
	SkewPerSecond float64
	// JitterSeconds perturbs each timestamp by uniform ±JitterSeconds.
	JitterSeconds float64
	// LatencyRate / LatencySeconds inject burst sleeps before
	// publication.
	LatencyRate    float64
	LatencySeconds float64
	// CutoffSeconds, when > 0, drops every message stamped at or after
	// it — mid-flight truncation.
	CutoffSeconds float64
	// PoisonAfter, when > 0, publishes a PoisonPill in place of the n-th
	// message offered (1-based).
	PoisonAfter int
	// Sleep implements latency bursts (nil = time.Sleep). Soaks that
	// replay as fast as possible install a no-op and still get the
	// injection counted.
	Sleep func(time.Duration)
}

// obs counters, one per kind, resolved once.
var injectedCounters = func() map[Kind]*obs.Counter {
	m := make(map[Kind]*obs.Counter, len(Kinds))
	for _, k := range Kinds {
		m[k] = obs.Default.Counter("chaos.injected." + string(k))
	}
	return m
}()

// topicChaos is the per-topic injector state.
type topicChaos struct {
	rates       Rates
	prev        any     // last payload offered (freeze source)
	freezeUntil float64 // episode end, exclusive
	held        *mavbus.Message
}

// Injector applies one Config to a message sequence. It is safe for
// concurrent use, but determinism additionally requires that messages be
// offered in a deterministic order — one injector per session/replay,
// fed by one goroutine, is the intended shape.
type Injector struct {
	cfg     Config
	corrupt CorruptFunc

	mu     sync.Mutex
	rng    *rand.Rand
	topics map[string]*topicChaos
	counts map[Kind]int64
	offers int // messages offered so far (poison trigger)
}

// NewInjector builds an injector for one schedule. corrupt supplies the
// typed payload mutators (stream.CorruptPayload for the engine's payload
// types); nil disables payload corruption, freeze, and retime.
func NewInjector(cfg Config, corrupt CorruptFunc) *Injector {
	if cfg.FreezeSeconds <= 0 {
		cfg.FreezeSeconds = 1
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Injector{
		cfg:     cfg,
		corrupt: corrupt,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		topics:  make(map[string]*topicChaos),
		counts:  make(map[Kind]int64),
	}
}

// PubFunc publishes one message (mavbus.Bus.Publish, or any wrapper).
type PubFunc func(mavbus.Message) error

// Publisher returns a publish function that routes every message through
// the fault schedule before handing the survivors to pub.
func (in *Injector) Publisher(pub PubFunc) PubFunc {
	return func(m mavbus.Message) error { return in.Offer(m, pub) }
}

// Counts returns an exact snapshot of the faults injected so far.
func (in *Injector) Counts() map[Kind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults across kinds.
func (in *Injector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.counts {
		n += v
	}
	return n
}

func (in *Injector) count(k Kind) {
	in.counts[k]++
	injectedCounters[k].Inc()
}

func (in *Injector) topicLocked(topic string) *topicChaos {
	tc, ok := in.topics[topic]
	if !ok {
		rates, has := in.cfg.PerTopic[topic]
		if !has {
			rates = in.cfg.Default
		}
		tc = &topicChaos{rates: rates}
		in.topics[topic] = tc
	}
	return tc
}

// hit draws one decision. Rates of zero consume no randomness, so a
// schedule's draw sequence depends only on its own configuration and the
// message sequence.
func (in *Injector) hit(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return in.rng.Float64() < rate
}

// Offer runs one message through the schedule and publishes the result
// (possibly mutated, duplicated, reordered, or nothing at all) via pub.
// The returned error is the first publish error, if any; injected drops
// return nil — from the producer's point of view the message was
// accepted and then lost, exactly like a lossy link.
func (in *Injector) Offer(m mavbus.Message, pub PubFunc) error {
	in.mu.Lock()
	in.offers++
	tc := in.topicLocked(m.Topic)

	// Mid-flight truncation: everything at or past the cutoff vanishes.
	if in.cfg.CutoffSeconds > 0 && m.Time >= in.cfg.CutoffSeconds {
		in.count(KindCutoff)
		in.mu.Unlock()
		return nil
	}

	// Poison pill: replace the n-th offered message wholesale.
	if in.cfg.PoisonAfter > 0 && in.offers == in.cfg.PoisonAfter {
		in.count(KindPoison)
		poisoned := mavbus.Message{Topic: m.Topic, Time: m.Time, Payload: PoisonPill{}}
		in.mu.Unlock()
		return pub(poisoned)
	}

	prev := tc.prev
	tc.prev = m.Payload

	if in.hit(tc.rates.Drop) {
		in.count(KindDrop)
		in.mu.Unlock()
		return nil
	}

	// Stuck-at episodes: latch payload values at prev's while the
	// timestamps keep advancing.
	if in.corrupt != nil {
		if m.Time < tc.freezeUntil && prev != nil {
			if frozen, ok := in.corrupt(in.rng, CorruptFreeze, m.Payload, prev, 0); ok {
				m.Payload = frozen
				in.count(KindFreeze)
			}
		} else if in.hit(tc.rates.Freeze) {
			tc.freezeUntil = m.Time + in.cfg.FreezeSeconds
		}

		// At most one payload corruption per message, NaN > truncate >
		// bit-flip.
		switch {
		case in.hit(tc.rates.NaN):
			if p, ok := in.corrupt(in.rng, CorruptNaN, m.Payload, prev, 0); ok {
				m.Payload = p
				in.count(KindCorruptNaN)
			}
		case in.hit(tc.rates.Truncate):
			if p, ok := in.corrupt(in.rng, CorruptTruncate, m.Payload, prev, 0); ok {
				m.Payload = p
				in.count(KindTruncate)
			}
		case in.hit(tc.rates.BitFlip):
			if p, ok := in.corrupt(in.rng, CorruptBitFlip, m.Payload, prev, 0); ok {
				m.Payload = p
				in.count(KindBitFlip)
			}
		}

		// Clock skew and timestamp jitter: a drifting dt plus uniform
		// noise, applied to the envelope and the payload's own clocks.
		if in.cfg.SkewPerSecond != 0 || in.cfg.JitterSeconds > 0 {
			dt := in.cfg.SkewPerSecond * m.Time
			if in.cfg.JitterSeconds > 0 {
				dt += (2*in.rng.Float64() - 1) * in.cfg.JitterSeconds
			}
			if dt != 0 && !math.IsNaN(dt) {
				if p, ok := in.corrupt(in.rng, CorruptRetime, m.Payload, prev, dt); ok {
					m.Payload = p
					m.Time += dt
					in.count(KindRetime)
				}
			}
		}
	}

	// Burst latency before publication.
	var delay time.Duration
	if in.hit(in.cfg.LatencyRate) && in.cfg.LatencySeconds > 0 {
		in.count(KindLatency)
		delay = time.Duration(in.cfg.LatencySeconds * float64(time.Second))
	}

	dup := in.hit(tc.rates.Dup)
	if dup {
		in.count(KindDup)
	}

	// Reordering: hold this message back and release it after the next
	// one on the same topic. A held message is never held twice. A
	// duplicate of a held message still goes out now — duplication and
	// reordering compose (one copy early, one late) rather than cancel,
	// which keeps the conservation law exact: every offer eventually
	// publishes 1 + dup copies.
	var out []mavbus.Message
	if tc.held != nil {
		out = append(out, m, *tc.held)
		tc.held = nil
	} else if in.hit(tc.rates.Reorder) {
		in.count(KindReorder)
		held := m
		tc.held = &held
	} else {
		out = append(out, m)
	}
	if dup {
		out = append(out, m)
	}
	sleep := in.cfg.Sleep
	in.mu.Unlock()

	if delay > 0 {
		sleep(delay)
	}
	var firstErr error
	for _, msg := range out {
		if err := pub(msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Flush publishes any message still held for reordering — call once the
// source stream ends so the last message is not silently swallowed.
func (in *Injector) Flush(pub PubFunc) error {
	in.mu.Lock()
	topics := make([]string, 0, len(in.topics))
	for t := range in.topics {
		topics = append(topics, t)
	}
	sort.Strings(topics) // deterministic release order
	var out []mavbus.Message
	for _, t := range topics {
		if tc := in.topics[t]; tc.held != nil {
			out = append(out, *tc.held)
			tc.held = nil
		}
	}
	in.mu.Unlock()
	var firstErr error
	for _, m := range out {
		if err := pub(m); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
