package triage

import (
	"bytes"
	"encoding/json"
	"fmt"

	"soundboost/internal/dsp"
)

// SchemaVersion identifies the serialized triage model format. Bump it
// on any incompatible layout change; decode is strict in both
// directions (unknown fields rejected, version pinned).
const SchemaVersion = "triage/v1"

type bandFile struct {
	Name string  `json:"name"`
	Low  float64 `json:"low_hz"`
	High float64 `json:"high_hz"`
}

type configFile struct {
	Bands           []bandFile `json:"bands"`
	RolloffFraction float64    `json:"rolloff_fraction"`
	MaxPrototypes   int        `json:"max_prototypes"`
	KMin            int        `json:"k_min"`
	KMax            int        `json:"k_max"`
	BenignQuantile  float64    `json:"benign_quantile"`
	RadiusMargin    float64    `json:"radius_margin"`
	StrictFactor    float64    `json:"strict_factor"`
}

type modelFile struct {
	SchemaVersion string      `json:"schema_version"`
	Config        configFile  `json:"config"`
	Mean          []float64   `json:"mean"`
	Std           []float64   `json:"std"`
	Prototypes    [][]float64 `json:"prototypes"`
	Labels        []int       `json:"labels"`
	K             int         `json:"k"`
	VoteLimit     int         `json:"vote_limit"`
	BenignRadius  float64     `json:"benign_radius"`
	SNRFloorDB    float64     `json:"snr_floor_db"`
	SNRStrictDB   float64     `json:"snr_strict_db"`
}

// MarshalJSON serializes the trained model in the triage/v1 format.
func (m *Model) MarshalJSON() ([]byte, error) {
	f := modelFile{
		SchemaVersion: SchemaVersion,
		Config: configFile{
			RolloffFraction: m.cfg.Features.RolloffFraction,
			MaxPrototypes:   m.cfg.MaxPrototypes,
			KMin:            m.cfg.KMin,
			KMax:            m.cfg.KMax,
			BenignQuantile:  m.cfg.BenignQuantile,
			RadiusMargin:    m.cfg.RadiusMargin,
			StrictFactor:    m.cfg.StrictFactor,
		},
		Mean:         m.mean,
		Std:          m.std,
		Prototypes:   m.protos,
		Labels:       m.labels,
		K:            m.k,
		VoteLimit:    m.voteLimit,
		BenignRadius: m.benignRadius,
		SNRFloorDB:   m.snrFloorDB,
		SNRStrictDB:  m.snrStrictDB,
	}
	for _, b := range m.cfg.Features.Bands {
		f.Config.Bands = append(f.Config.Bands, bandFile{Name: b.Name, Low: b.Low, High: b.High})
	}
	return json.Marshal(f)
}

// UnmarshalJSON restores a model from the triage/v1 format. Decoding is
// strict: unknown fields, version mismatches, and inconsistent
// dimensions are all errors.
func (m *Model) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f modelFile
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("triage: decode model: %w", err)
	}
	if f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("triage: schema version %q, want %q", f.SchemaVersion, SchemaVersion)
	}
	cfg := Config{
		Features: FeatureConfig{
			RolloffFraction: f.Config.RolloffFraction,
		},
		MaxPrototypes:  f.Config.MaxPrototypes,
		KMin:           f.Config.KMin,
		KMax:           f.Config.KMax,
		BenignQuantile: f.Config.BenignQuantile,
		RadiusMargin:   f.Config.RadiusMargin,
		StrictFactor:   f.Config.StrictFactor,
	}
	for _, b := range f.Config.Bands {
		cfg.Features.Bands = append(cfg.Features.Bands, dsp.Band{Name: b.Name, Low: b.Low, High: b.High})
	}
	dim := cfg.Features.Dim()
	if len(cfg.Features.Bands) == 0 {
		return fmt.Errorf("triage: model has no analysis bands")
	}
	if len(f.Mean) != dim || len(f.Std) != dim {
		return fmt.Errorf("triage: normalizer dims %d/%d, want %d", len(f.Mean), len(f.Std), dim)
	}
	if len(f.Prototypes) == 0 || len(f.Prototypes) != len(f.Labels) {
		return fmt.Errorf("triage: %d prototypes with %d labels", len(f.Prototypes), len(f.Labels))
	}
	for i, p := range f.Prototypes {
		if len(p) != dim {
			return fmt.Errorf("triage: prototype %d has dim %d, want %d", i, len(p), dim)
		}
		if f.Labels[i] != 0 && f.Labels[i] != 1 {
			return fmt.Errorf("triage: prototype %d has label %d", i, f.Labels[i])
		}
	}
	if f.K <= 0 || f.K > len(f.Prototypes) {
		return fmt.Errorf("triage: k=%d with %d prototypes", f.K, len(f.Prototypes))
	}
	if f.VoteLimit < 0 || f.VoteLimit >= f.K {
		return fmt.Errorf("triage: vote limit %d with k=%d", f.VoteLimit, f.K)
	}
	if f.BenignRadius <= 0 {
		return fmt.Errorf("triage: non-positive benign radius %g", f.BenignRadius)
	}
	m.cfg = cfg.withDefaults()
	m.mean = f.Mean
	m.std = f.Std
	m.protos = f.Prototypes
	m.labels = f.Labels
	m.k = f.K
	m.voteLimit = f.VoteLimit
	m.benignRadius = f.BenignRadius
	m.snrFloorDB = f.SNRFloorDB
	m.snrStrictDB = f.SNRStrictDB
	return nil
}
