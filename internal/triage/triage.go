// Package triage is SoundBoost's screening tier: a cheap per-window
// feature extractor feeding a K-nearest-neighbour classifier that lets
// confidently-benign windows skip the expensive signature → NN → KS/KF
// pipeline. The design follows the AALIS acoustic triage classifier
// (spectral band energies, centroid, rolloff, flatness, ZCR and an SNR
// estimate, with adaptive K and SNR-adaptive confidence thresholds),
// extended with four cheap telemetry cross-checks — the acoustic channel
// alone cannot separate benign from attacked flights because the threat
// model corrupts only logged telemetry, never the microphones.
//
// The policy is deliberately one-directional: the fast path can only
// ever conclude "benign". Any doubt — anomalous neighbours beyond the
// calibrated tolerance, a window off the calibrated benign manifold,
// low SNR, missing telemetry — escalates to the full pipeline, which is
// what makes the zero verdict-flip guarantee structural rather than
// statistical (see DESIGN.md "Triage tier contract").
package triage

import (
	"fmt"
	"math"
	"sort"

	"soundboost/internal/dsp"
	"soundboost/internal/mathx"
)

// IMUPoint is one telemetry row's inertial reading inside a window.
type IMUPoint struct {
	Accel mathx.Vec3
	Gyro  mathx.Vec3
}

// GPSPoint is one telemetry row's GPS fix inside a window. Rows arrive
// at the IMU rate with the latest fix repeated, identically on the
// batch and streaming paths, so features derived from consecutive rows
// are path-independent.
type GPSPoint struct {
	Time float64
	Pos  mathx.Vec3
	Vel  mathx.Vec3
}

// FeatureConfig controls the per-window triage feature vector.
type FeatureConfig struct {
	// Bands are the analysis bands (normally the signature bands).
	Bands []dsp.Band
	// RolloffFraction is the spectral-rolloff energy fraction
	// (default 0.95).
	RolloffFraction float64
}

func (c FeatureConfig) withDefaults() FeatureConfig {
	if c.RolloffFraction <= 0 || c.RolloffFraction >= 1 {
		c.RolloffFraction = 0.95
	}
	return c
}

// Dim returns the feature-vector length: one energy per band plus six
// broadband acoustic features plus four telemetry cross-checks.
func (c FeatureConfig) Dim() int { return len(c.Bands) + 10 }

// SNRIndex returns the index of the SNR feature (dB, unnormalised in
// the raw vector) — the classifier reads it back for its SNR-adaptive
// confidence threshold.
func (c FeatureConfig) SNRIndex() int { return len(c.Bands) + 5 }

// Features computes the triage vector for one window: audio is the
// low-pass-filtered primary-mic samples, imu and gps the telemetry rows
// with Time in the window. One FFT total — this is the entire acoustic
// cost of the fast path. Returns nil when the window is unusable
// (callers must escalate).
//
// Layout: [band energies..., centroid, rolloff, flatness, ZCR, logRMS,
// SNR dB, accel-magnitude std, gyro-magnitude mean, max consecutive GPS
// velocity jump, position/velocity consistency gap].
func (c FeatureConfig) Features(audio []float64, rate float64, imu []IMUPoint, gps []GPSPoint) []float64 {
	c = c.withDefaults()
	n := len(audio)
	if n < 16 || rate <= 0 || len(c.Bands) == 0 || len(imu) == 0 {
		return nil
	}
	out := make([]float64, 0, c.Dim())

	// --- One FFT over the whole window.
	nfft := dsp.NextPow2(n)
	plan := dsp.PlanFFT(nfft)
	buf := dsp.AcquireComplex(nfft)
	defer dsp.ReleaseComplex(buf)
	win := dsp.CachedHann(n)
	for i := range buf {
		buf[i] = 0
	}
	var rms float64
	zc := 0
	prev := audio[0]
	for i := 0; i < n; i++ {
		v := audio[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		buf[i] = complex(v*win[i], 0)
		rms += v * v
		if (v > 0 && prev < 0) || (v < 0 && prev > 0) {
			zc++
		}
		if v != 0 {
			prev = v
		}
	}
	rms = math.Sqrt(rms / float64(n))
	plan.Forward(buf)
	mags := dsp.Magnitudes(buf[:nfft/2+1])

	// Band energies, normalised like the signature kernel so magnitudes
	// stay comparable across window sizes.
	inBand := 0.0
	for _, band := range c.Bands {
		e := dsp.BandEnergy(mags, nfft, rate, band) / math.Sqrt(float64(nfft))
		out = append(out, math.Log1p(e))
		inBand += e * e
	}

	// Broadband shape: centroid, rolloff, flatness over the power
	// spectrum (DC excluded), frequencies normalised by Nyquist.
	nyquist := rate / 2
	var totalPow, weighted, logSum float64
	for k := 1; k < len(mags); k++ {
		p := mags[k] * mags[k]
		totalPow += p
		weighted += p * dsp.BinFrequency(k, nfft, rate)
		logSum += math.Log(p + 1e-20)
	}
	if totalPow <= 0 {
		return nil
	}
	centroid := weighted / totalPow / nyquist
	target := c.RolloffFraction * totalPow
	rolloff := nyquist
	cum := 0.0
	for k := 1; k < len(mags); k++ {
		cum += mags[k] * mags[k]
		if cum >= target {
			rolloff = dsp.BinFrequency(k, nfft, rate)
			break
		}
	}
	bins := float64(len(mags) - 1)
	flatness := math.Exp(logSum/bins) / (totalPow / bins)
	zcr := float64(zc) / float64(n)

	// SNR: energy inside the analysis bands against the out-of-band
	// floor. The attack-free synthesiser concentrates rotor energy in
	// the bands; a window whose floor swamps them is one the NN was not
	// trained for, so the classifier treats low SNR as doubt.
	outBand := totalPow/float64(nfft) - inBand
	if outBand < 1e-20 {
		outBand = 1e-20
	}
	snr := 10 * math.Log10((inBand+1e-20)/outBand)

	out = append(out, centroid, rolloff/nyquist, flatness, zcr, math.Log1p(rms), snr)

	out = appendTelemetryFeatures(out, imu, gps)

	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
	}
	return out
}

// Features32 is the float32 spectral variant of Features: same feature
// layout, same telemetry cross-checks (float64, bit-identical to
// Features), but the window transform runs through the real-input
// float32 FFT and the band energies are accumulated in float32. The
// scalar features derived from the spectrum track Features within the
// documented per-feature tolerance of the float32 path; callers opt in
// via the signature precision, never by default.
func (c FeatureConfig) Features32(audio []float64, rate float64, imu []IMUPoint, gps []GPSPoint) []float64 {
	c = c.withDefaults()
	n := len(audio)
	if n < 16 || rate <= 0 || len(c.Bands) == 0 || len(imu) == 0 {
		return nil
	}
	out := make([]float64, 0, c.Dim())

	// --- One real-input float32 FFT over the whole window. The validity
	// scan, RMS and ZCR stay in float64 so the escalation predicate and
	// the two broadband time-domain features match Features bit for bit.
	nfft := dsp.NextPow2(n)
	plan := dsp.PlanFFT32(nfft)
	re := dsp.AcquireFloats32(nfft)
	defer dsp.ReleaseFloats32(re)
	spec := dsp.AcquireComplex64(plan.SpectrumLen())
	defer dsp.ReleaseComplex64(spec)
	win := dsp.CachedHann32(n)
	var rms float64
	zc := 0
	prev := audio[0]
	for i := 0; i < n; i++ {
		v := audio[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		// re[n:] stays zero: the arena hands buffers out zeroed.
		re[i] = float32(v) * win[i]
		rms += v * v
		if (v > 0 && prev < 0) || (v < 0 && prev > 0) {
			zc++
		}
		if v != 0 {
			prev = v
		}
	}
	rms = math.Sqrt(rms / float64(n))
	spec = plan.ForwardReal(re, spec)

	// Band energies, normalised like the signature kernel.
	invSqrtN := 1 / math.Sqrt(float64(nfft))
	inBand := 0.0
	for _, band := range c.Bands {
		e := dsp.BandPower32(spec, nfft, rate, band) * invSqrtN
		out = append(out, math.Log1p(e))
		inBand += e * e
	}

	// Broadband shape over the half spectrum (DC excluded). Per-bin
	// powers come straight off the float32 components — no square roots
	// — and accumulate in float64 like the exact path.
	nyquist := rate / 2
	var totalPow, weighted, logSum float64
	for k := 1; k < len(spec); k++ {
		zr, zi := real(spec[k]), imag(spec[k])
		p := float64(zr*zr + zi*zi)
		totalPow += p
		weighted += p * dsp.BinFrequency(k, nfft, rate)
		logSum += math.Log(p + 1e-20)
	}
	if totalPow <= 0 {
		return nil
	}
	centroid := weighted / totalPow / nyquist
	target := c.RolloffFraction * totalPow
	rolloff := nyquist
	cum := 0.0
	for k := 1; k < len(spec); k++ {
		zr, zi := real(spec[k]), imag(spec[k])
		cum += float64(zr*zr + zi*zi)
		if cum >= target {
			rolloff = dsp.BinFrequency(k, nfft, rate)
			break
		}
	}
	bins := float64(len(spec) - 1)
	flatness := math.Exp(logSum/bins) / (totalPow / bins)
	zcr := float64(zc) / float64(n)

	outBand := totalPow/float64(nfft) - inBand
	if outBand < 1e-20 {
		outBand = 1e-20
	}
	snr := 10 * math.Log10((inBand+1e-20)/outBand)

	out = append(out, centroid, rolloff/nyquist, flatness, zcr, math.Log1p(rms), snr)
	out = appendTelemetryFeatures(out, imu, gps)

	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
	}
	return out
}

// appendTelemetryFeatures appends the four telemetry cross-checks — the
// features that can see attacks the microphones cannot (spoofed rows
// never touch the audio channel). Shared verbatim by Features and
// Features32 so the two precisions agree bit for bit on them.
func appendTelemetryFeatures(out []float64, imu []IMUPoint, gps []GPSPoint) []float64 {
	var accMean, gyroMean float64
	accMags := make([]float64, len(imu))
	for i, p := range imu {
		accMags[i] = p.Accel.Norm()
		accMean += accMags[i]
		gyroMean += p.Gyro.Norm()
	}
	accMean /= float64(len(imu))
	gyroMean /= float64(len(imu))
	var accVar float64
	for _, m := range accMags {
		d := m - accMean
		accVar += d * d
	}
	accStd := math.Sqrt(accVar / float64(len(imu)))

	// GPS: the largest instantaneous velocity step between consecutive
	// rows (spoof onsets are discontinuous) and the gap between the
	// position-derived velocity and the reported mean velocity (static
	// spoofs freeze the position while the vehicle keeps moving).
	var velJump, posVelGap float64
	if len(gps) >= 2 {
		var velSum mathx.Vec3
		for i, p := range gps {
			velSum = velSum.Add(p.Vel)
			if i > 0 {
				if j := p.Vel.Sub(gps[i-1].Vel).Norm(); j > velJump {
					velJump = j
				}
			}
		}
		dt := gps[len(gps)-1].Time - gps[0].Time
		if dt > 1e-9 {
			derived := gps[len(gps)-1].Pos.Sub(gps[0].Pos).Scale(1 / dt)
			posVelGap = derived.Sub(velSum.Scale(1 / float64(len(gps)))).Norm()
		}
	}
	return append(out, accStd, gyroMean, velJump, posVelGap)
}

// Config tunes training and classification.
type Config struct {
	// Features is the extraction layout.
	Features FeatureConfig
	// MaxPrototypes caps the stored prototype set (default 256);
	// training subsamples each class deterministically.
	MaxPrototypes int
	// KMin and KMax clamp the adaptive neighbour count
	// k = round(sqrt(#prototypes)) (defaults 3 and 25).
	KMin, KMax int
	// BenignQuantile is the benign-distance quantile the radius
	// calibrates to (default 0.99).
	BenignQuantile float64
	// RadiusMargin scales the calibrated radius (default 1.25).
	RadiusMargin float64
	// StrictFactor shrinks the radius for low-SNR windows (default 0.5).
	StrictFactor float64
}

func (c Config) withDefaults() Config {
	c.Features = c.Features.withDefaults()
	if c.MaxPrototypes <= 0 {
		c.MaxPrototypes = 256
	}
	if c.KMin <= 0 {
		c.KMin = 3
	}
	if c.KMax <= 0 {
		c.KMax = 25
	}
	if c.KMax < c.KMin {
		c.KMax = c.KMin
	}
	if c.BenignQuantile <= 0 || c.BenignQuantile > 1 {
		c.BenignQuantile = 0.99
	}
	if c.RadiusMargin <= 0 {
		c.RadiusMargin = 1.25
	}
	if c.StrictFactor <= 0 || c.StrictFactor > 1 {
		c.StrictFactor = 0.5
	}
	return c
}

// Sample is one labelled training window.
type Sample struct {
	// Features is the raw (unnormalised) triage vector.
	Features []float64
	// Anomalous marks windows overlapping an attack signature.
	Anomalous bool
}

// Model is the trained KNN screener. It is immutable after training
// apart from Tighten, and safe for concurrent Classify calls.
type Model struct {
	cfg    Config
	mean   []float64
	std    []float64
	protos [][]float64 // z-score normalised
	labels []int       // 0 benign, 1 anomalous
	k      int

	// voteLimit is the calibrated anomalous-neighbour tolerance: a
	// window escalates on votes strictly above it. Benign windows pick
	// up the odd stray anomalous neighbour (attack prototypes live on
	// the same manifold's edge); real attack windows draw several.
	voteLimit int

	// benignRadius is the calibrated distance bound for confident-benign
	// windows; snrFloorDB escalates outright below it, snrStrictDB
	// shrinks the radius by StrictFactor below it.
	benignRadius float64
	snrFloorDB   float64
	snrStrictDB  float64
}

// Config returns the training configuration (defaults resolved).
func (m *Model) Config() Config { return m.cfg }

// K returns the adaptive neighbour count.
func (m *Model) K() int { return m.k }

// Prototypes returns the stored prototype count.
func (m *Model) Prototypes() int { return len(m.protos) }

// BenignRadius returns the current confident-benign distance bound.
func (m *Model) BenignRadius() float64 { return m.benignRadius }

// VoteLimit returns the calibrated anomalous-neighbour tolerance.
func (m *Model) VoteLimit() int { return m.voteLimit }

// Train fits the screener from labelled windows. The prototype set is a
// deterministic stratified subsample, K adapts to its size, and the
// benign radius calibrates to the configured quantile of benign
// training distances. At least one benign sample is required; anomalous
// samples are optional (without them the model degenerates to a pure
// benign-manifold distance check).
func Train(samples []Sample, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	dim := cfg.Features.Dim()
	var benign, anom [][]float64
	for i, s := range samples {
		if len(s.Features) != dim {
			return nil, fmt.Errorf("triage: sample %d has %d features, want %d", i, len(s.Features), dim)
		}
		if s.Anomalous {
			anom = append(anom, s.Features)
		} else {
			benign = append(benign, s.Features)
		}
	}
	if len(benign) == 0 {
		return nil, fmt.Errorf("triage: no benign training windows")
	}

	m := &Model{cfg: cfg}
	m.fitNormalizer(samples, dim)

	// Stratified deterministic subsample: class quotas proportional to
	// class sizes (each at least 1 when the class is non-empty), picked
	// by even stride so the same corpus always yields the same model.
	quotaB, quotaA := len(benign), len(anom)
	if total := quotaB + quotaA; total > cfg.MaxPrototypes {
		quotaB = cfg.MaxPrototypes * len(benign) / total
		if quotaB < 1 {
			quotaB = 1
		}
		quotaA = cfg.MaxPrototypes - quotaB
		if len(anom) == 0 {
			quotaA = 0
			quotaB = cfg.MaxPrototypes
		} else if quotaA < 1 {
			quotaA = 1
			quotaB = cfg.MaxPrototypes - 1
		}
	}
	for _, x := range stride(benign, quotaB) {
		m.protos = append(m.protos, m.normalize(x))
		m.labels = append(m.labels, 0)
	}
	for _, x := range stride(anom, quotaA) {
		m.protos = append(m.protos, m.normalize(x))
		m.labels = append(m.labels, 1)
	}

	k := int(math.Round(math.Sqrt(float64(len(m.protos)))))
	if k < cfg.KMin {
		k = cfg.KMin
	}
	if k > cfg.KMax {
		k = cfg.KMax
	}
	if k > len(m.protos) {
		k = len(m.protos)
	}
	m.k = k

	// Radius: the configured quantile of every benign sample's mean
	// distance to its k nearest benign prototypes, widened by the margin.
	dists := make([]float64, 0, len(benign))
	for _, x := range benign {
		dists = append(dists, m.meanBenignDistance(m.normalize(x)))
	}
	sort.Float64s(dists)
	idx := int(cfg.BenignQuantile * float64(len(dists)-1))
	m.benignRadius = dists[idx] * cfg.RadiusMargin
	if m.benignRadius <= 0 {
		m.benignRadius = 1e-6
	}

	// Vote tolerance: anomalous prototypes sit on the edge of the same
	// manifold, so ordinary benign windows pick up the odd stray
	// anomalous neighbour while genuine attack windows draw several.
	// Calibrate the tolerance to the benign quantile of the training
	// windows' own vote counts, capped below k so a unanimously
	// anomalous neighbourhood always escalates.
	votes := make([]int, 0, len(benign))
	for _, x := range benign {
		_, v := m.neighbours(m.normalize(x))
		votes = append(votes, v)
	}
	sort.Ints(votes)
	m.voteLimit = votes[int(cfg.BenignQuantile*float64(len(votes)-1))]
	if m.voteLimit >= m.k {
		m.voteLimit = m.k - 1
	}

	// SNR-adaptive thresholds from the benign SNR distribution: floor
	// well below anything seen in training, strict bound at the 5th
	// percentile.
	snrs := make([]float64, len(benign))
	si := cfg.Features.SNRIndex()
	for i, x := range benign {
		snrs[i] = x[si]
	}
	sort.Float64s(snrs)
	m.snrFloorDB = snrs[0] - 6
	m.snrStrictDB = snrs[int(0.05*float64(len(snrs)-1))]
	return m, nil
}

// stride picks quota elements from xs at even spacing (deterministic).
func stride(xs [][]float64, quota int) [][]float64 {
	if quota >= len(xs) {
		return xs
	}
	if quota <= 0 {
		return nil
	}
	out := make([][]float64, 0, quota)
	for i := 0; i < quota; i++ {
		out = append(out, xs[i*len(xs)/quota])
	}
	return out
}

func (m *Model) fitNormalizer(samples []Sample, dim int) {
	m.mean = make([]float64, dim)
	m.std = make([]float64, dim)
	n := float64(len(samples))
	for _, s := range samples {
		for j, v := range s.Features {
			m.mean[j] += v
		}
	}
	for j := range m.mean {
		m.mean[j] /= n
	}
	for _, s := range samples {
		for j, v := range s.Features {
			d := v - m.mean[j]
			m.std[j] += d * d
		}
	}
	for j := range m.std {
		m.std[j] = math.Sqrt(m.std[j] / n)
		if m.std[j] < 1e-9 {
			m.std[j] = 1
		}
	}
}

func (m *Model) normalize(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - m.mean[j]) / m.std[j]
	}
	return out
}

// meanBenignDistance is the mean Euclidean distance from z to its k
// nearest benign prototypes.
func (m *Model) meanBenignDistance(z []float64) float64 {
	var dists []float64
	for i, p := range m.protos {
		if m.labels[i] != 0 {
			continue
		}
		dists = append(dists, euclid(z, p))
	}
	sort.Float64s(dists)
	k := m.k
	if k > len(dists) {
		k = len(dists)
	}
	if k == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for _, d := range dists[:k] {
		sum += d
	}
	return sum / float64(k)
}

func euclid(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return math.Sqrt(s)
}

// Decision is the outcome of screening one window.
type Decision struct {
	// Benign is true only for confident-benign windows; everything else
	// must escalate to the full pipeline.
	Benign bool
	// Distance is the mean distance to the k nearest neighbours.
	Distance float64
	// AnomVotes counts anomalous prototypes among the k nearest.
	AnomVotes int
	// Reason explains a non-benign decision ("" when benign).
	Reason string
}

// neighbours returns the mean distance to and the anomalous count among
// the k nearest prototypes of a normalised vector. The prototype set is
// small by construction, so a full scan plus sort is the whole cost.
func (m *Model) neighbours(z []float64) (meanDist float64, votes int) {
	dists := make([]float64, len(m.protos))
	for i, p := range m.protos {
		dists[i] = euclid(z, p)
	}
	idx := make([]int, len(dists))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return dists[idx[a]] < dists[idx[b]] })
	var sum float64
	for _, i := range idx[:m.k] {
		sum += dists[i]
		if m.labels[i] == 1 {
			votes++
		}
	}
	return sum / float64(m.k), votes
}

// Classify screens one raw feature vector. The window is
// confident-benign only when every check passes: SNR above the floor,
// anomalous neighbours within the calibrated vote tolerance, and mean
// neighbour distance within the (SNR-adjusted) benign radius. A nil or
// wrong-length vector escalates.
func (m *Model) Classify(feat []float64) Decision {
	span := classifyTimer.Start()
	defer span.Stop()
	if len(feat) != len(m.mean) {
		return escalated(Decision{Reason: "unusable window"})
	}
	snr := feat[m.cfg.Features.SNRIndex()]
	if snr < m.snrFloorDB {
		return escalated(Decision{Reason: "snr below floor"})
	}
	z := m.normalize(feat)

	dist, votes := m.neighbours(z)
	d := Decision{Distance: dist, AnomVotes: votes}
	if votes > m.voteLimit {
		d.Reason = "anomalous neighbours"
		return escalated(d)
	}
	radius := m.benignRadius
	if snr < m.snrStrictDB {
		radius *= m.cfg.StrictFactor
	}
	if d.Distance > radius {
		d.Reason = "off benign manifold"
		return escalated(d)
	}
	d.Benign = true
	recordScreened()
	return d
}

func escalated(d Decision) Decision {
	recordEscalated()
	return d
}

// MaxBenignDistance returns the largest mean k-nearest distance over
// the given raw vectors — the radius below which at least one of them
// stops screening benign. Calibration uses it to tighten the radius
// until a must-escalate flight escalates.
func (m *Model) MaxBenignDistance(feats [][]float64) float64 {
	maxD := 0.0
	for _, f := range feats {
		if len(f) != len(m.mean) {
			continue
		}
		if d := m.meanBenignDistance(m.normalize(f)); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// Tighten lowers the benign radius to below (no-op when the current
// radius is already lower). Tightening is one-directional — it can only
// turn fast-path windows into escalations, never the reverse — so it
// preserves the zero-flip guarantee while enforcing it on a corpus.
func (m *Model) Tighten(below float64) {
	if below < m.benignRadius {
		m.benignRadius = below
	}
}
