package triage

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"soundboost/internal/dsp"
	"soundboost/internal/mathx"
)

func testFeatureConfig() FeatureConfig {
	return FeatureConfig{Bands: []dsp.Band{
		{Name: "mech", Low: 80, High: 400},
		{Name: "blade", Low: 400, High: 1200},
	}}
}

// synthWindow builds a deterministic tonal window with additive noise.
func synthWindow(rng *rand.Rand, rate float64, n int, toneHz, toneAmp, noiseAmp float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / rate
		out[i] = toneAmp*math.Sin(2*math.Pi*toneHz*t) + noiseAmp*(2*rng.Float64()-1)
	}
	return out
}

func benignTelemetry(rng *rand.Rand, n int) ([]IMUPoint, []GPSPoint) {
	imu := make([]IMUPoint, n)
	gps := make([]GPSPoint, n)
	for i := range imu {
		imu[i] = IMUPoint{
			Accel: mathx.Vec3{X: 0.1 * rng.NormFloat64(), Y: 0.1 * rng.NormFloat64(), Z: -9.81 + 0.1*rng.NormFloat64()},
			Gyro:  mathx.Vec3{X: 0.02 * rng.NormFloat64(), Y: 0.02 * rng.NormFloat64(), Z: 0.02 * rng.NormFloat64()},
		}
		t := float64(i) * 0.005
		gps[i] = GPSPoint{Time: t, Pos: mathx.Vec3{X: 2 * t, Y: t}, Vel: mathx.Vec3{X: 2, Y: 1}}
	}
	return imu, gps
}

func TestFeatureVectorShapeAndSanity(t *testing.T) {
	cfg := testFeatureConfig()
	rng := rand.New(rand.NewSource(1))
	audio := synthWindow(rng, 4000, 2000, 220, 0.5, 0.01)
	imu, gps := benignTelemetry(rng, 100)

	f := cfg.Features(audio, 4000, imu, gps)
	if f == nil {
		t.Fatal("Features returned nil for a clean window")
	}
	if len(f) != cfg.Dim() {
		t.Fatalf("got %d features, want %d", len(f), cfg.Dim())
	}
	// The 220 Hz tone sits in the first band: its energy must dominate.
	if f[0] <= f[1] {
		t.Errorf("mech band energy %g not above blade band %g for a 220 Hz tone", f[0], f[1])
	}
	// Tonal signal in-band: SNR must be solidly positive.
	if snr := f[cfg.SNRIndex()]; snr < 3 {
		t.Errorf("SNR %g dB too low for a near-pure tone", snr)
	}
	// Benign straight-line motion: consistency features near zero.
	if f[cfg.Dim()-1] > 0.1 {
		t.Errorf("pos/vel gap %g for consistent motion", f[cfg.Dim()-1])
	}
	if f[cfg.Dim()-2] != 0 {
		t.Errorf("velocity jump %g for constant velocity", f[cfg.Dim()-2])
	}
}

// TestFeatures32TracksFloat64 pins the float32 spectral path to the
// exact path per feature: time-domain features (ZCR, logRMS) and the
// telemetry cross-checks are computed in float64 on both paths and must
// match bit for bit; spectral features must agree within the documented
// float32 tolerance (core.Float32Tolerance = 1e-3, restated here as a
// literal because triage sits below core in the import graph).
func TestFeatures32TracksFloat64(t *testing.T) {
	const tol = 1e-3
	cfg := testFeatureConfig()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		audio := synthWindow(rng, 4000, 2000, 150+100*rng.Float64(), 0.2+0.5*rng.Float64(), 0.05)
		imu, gps := benignTelemetry(rng, 100)
		f64 := cfg.Features(audio, 4000, imu, gps)
		f32 := cfg.Features32(audio, 4000, imu, gps)
		if f64 == nil || f32 == nil {
			t.Fatalf("trial %d: extraction failed (f64 nil=%v, f32 nil=%v)", trial, f64 == nil, f32 == nil)
		}
		if len(f32) != len(f64) {
			t.Fatalf("trial %d: dim mismatch %d vs %d", trial, len(f32), len(f64))
		}
		for i := range f64 {
			bound := tol
			if i == cfg.SNRIndex() {
				// SNR is a dB log-ratio whose denominator (out-of-band
				// power) is a difference of nearly-equal sums, so float32
				// rounding is amplified: it gets the separate 0.05 dB
				// bound from the DESIGN.md tolerance contract. The
				// classifier only compares SNR against coarse dB
				// thresholds, so this slack cannot flip a verdict.
				bound = 5e-2
			}
			if d := math.Abs(f32[i] - f64[i]); d > bound {
				t.Errorf("trial %d feature %d: |%g - %g| = %g exceeds tolerance %g",
					trial, i, f32[i], f64[i], d, bound)
			}
		}
		// ZCR and logRMS (indices Dim-7, Dim-6) plus the four telemetry
		// features stay in float64 on the fast path: exact equality.
		for _, i := range []int{cfg.Dim() - 7, cfg.Dim() - 6, cfg.Dim() - 4, cfg.Dim() - 3, cfg.Dim() - 2, cfg.Dim() - 1} {
			if f32[i] != f64[i] {
				t.Errorf("trial %d: float64-path feature %d differs: %g vs %g", trial, i, f32[i], f64[i])
			}
		}
	}
}

// TestFeatures32RejectionParity requires the fast path to escalate on
// exactly the windows the exact path escalates on — a window the exact
// path rejects but float32 accepts would silently change verdicts.
func TestFeatures32RejectionParity(t *testing.T) {
	cfg := testFeatureConfig()
	rng := rand.New(rand.NewSource(12))
	audio := synthWindow(rng, 4000, 2000, 220, 0.5, 0.01)
	imu, gps := benignTelemetry(rng, 50)
	bad := append([]float64(nil), audio...)
	bad[17] = math.NaN()

	cases := []struct {
		name  string
		audio []float64
		rate  float64
		imu   []IMUPoint
	}{
		{"nil audio", nil, 4000, imu},
		{"short window", audio[:8], 4000, imu},
		{"zero rate", audio, 0, imu},
		{"no imu", audio, 4000, nil},
		{"nan audio", bad, 4000, imu},
		{"all-zero audio", make([]float64, 2000), 4000, imu},
	}
	for _, tc := range cases {
		got64 := cfg.Features(tc.audio, tc.rate, tc.imu, gps)
		got32 := cfg.Features32(tc.audio, tc.rate, tc.imu, gps)
		if (got64 == nil) != (got32 == nil) {
			t.Errorf("%s: rejection parity broken (f64 nil=%v, f32 nil=%v)", tc.name, got64 == nil, got32 == nil)
		}
		if got64 != nil {
			t.Errorf("%s: exact path unexpectedly accepted the window", tc.name)
		}
	}
}

func TestFeaturesRejectUnusableWindows(t *testing.T) {
	cfg := testFeatureConfig()
	rng := rand.New(rand.NewSource(2))
	audio := synthWindow(rng, 4000, 2000, 220, 0.5, 0.01)
	imu, gps := benignTelemetry(rng, 50)

	if cfg.Features(nil, 4000, imu, gps) != nil {
		t.Error("nil audio accepted")
	}
	if cfg.Features(audio, 4000, nil, gps) != nil {
		t.Error("empty IMU window accepted")
	}
	bad := append([]float64(nil), audio...)
	bad[17] = math.NaN()
	if cfg.Features(bad, 4000, imu, gps) != nil {
		t.Error("NaN audio accepted")
	}
	if cfg.Features(make([]float64, 2000), 4000, imu, gps) != nil {
		t.Error("all-zero audio accepted (zero spectral power)")
	}
}

// trainTestModel builds a model from synthetic benign windows plus a
// cluster of anomalous windows with a GPS velocity-jump signature.
func trainTestModel(t *testing.T, withAnom bool) (*Model, []Sample, []Sample) {
	t.Helper()
	cfg := testFeatureConfig()
	rng := rand.New(rand.NewSource(7))
	var benign, anom []Sample
	for i := 0; i < 120; i++ {
		audio := synthWindow(rng, 4000, 2000, 200+20*rng.Float64(), 0.4+0.2*rng.Float64(), 0.02)
		imu, gps := benignTelemetry(rng, 100)
		f := cfg.Features(audio, 4000, imu, gps)
		if f == nil {
			t.Fatal("benign feature extraction failed")
		}
		benign = append(benign, Sample{Features: f})
	}
	for i := 0; i < 30; i++ {
		audio := synthWindow(rng, 4000, 2000, 200+20*rng.Float64(), 0.4+0.2*rng.Float64(), 0.02)
		imu, gps := benignTelemetry(rng, 100)
		// Spoof onset: discontinuous velocity step mid-window.
		for j := 50; j < len(gps); j++ {
			gps[j].Vel = gps[j].Vel.Add(mathx.Vec3{X: 4.5})
			gps[j].Pos = gps[j].Pos.Add(mathx.Vec3{X: 4.5 * (gps[j].Time - gps[50].Time)})
		}
		f := cfg.Features(audio, 4000, imu, gps)
		if f == nil {
			t.Fatal("anomalous feature extraction failed")
		}
		anom = append(anom, Sample{Features: f, Anomalous: true})
	}
	samples := append([]Sample{}, benign...)
	if withAnom {
		samples = append(samples, anom...)
	}
	m, err := Train(samples, Config{Features: cfg, MaxPrototypes: 64})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m, benign, anom
}

func TestTrainAndClassify(t *testing.T) {
	m, benign, anom := trainTestModel(t, true)
	if m.K() < 3 {
		t.Fatalf("adaptive K=%d below minimum", m.K())
	}
	if m.Prototypes() > 64 {
		t.Fatalf("%d prototypes exceed cap", m.Prototypes())
	}

	screened := 0
	for _, s := range benign {
		if m.Classify(s.Features).Benign {
			screened++
		}
	}
	if frac := float64(screened) / float64(len(benign)); frac < 0.8 {
		t.Errorf("only %.0f%% of benign training windows screen benign", 100*frac)
	}
	// Safety direction: no anomalous window may screen benign.
	for i, s := range anom {
		if d := m.Classify(s.Features); d.Benign {
			t.Errorf("anomalous window %d screened benign (dist=%g votes=%d)", i, d.Distance, d.AnomVotes)
		}
	}
}

func TestOneClassTraining(t *testing.T) {
	m, benign, anom := trainTestModel(t, false)
	ok := 0
	for _, s := range benign {
		if m.Classify(s.Features).Benign {
			ok++
		}
	}
	if ok == 0 {
		t.Error("one-class model screens nothing benign")
	}
	// Even without anomalous exemplars, the velocity-jump feature pushes
	// spoofed windows off the benign manifold.
	for i, s := range anom {
		if m.Classify(s.Features).Benign {
			t.Errorf("one-class model screened anomalous window %d benign", i)
		}
	}
}

func TestClassifyEscalatesOnDoubt(t *testing.T) {
	m, benign, _ := trainTestModel(t, true)
	if d := m.Classify(nil); d.Benign {
		t.Error("nil features screened benign")
	}
	if d := m.Classify(make([]float64, 3)); d.Benign {
		t.Error("wrong-length features screened benign")
	}
	low := append([]float64(nil), benign[0].Features...)
	low[m.cfg.Features.SNRIndex()] = m.snrFloorDB - 1
	if d := m.Classify(low); d.Benign {
		t.Error("below-floor SNR screened benign")
	}
}

func TestTightenIsOneDirectional(t *testing.T) {
	m, benign, _ := trainTestModel(t, true)
	r0 := m.BenignRadius()
	m.Tighten(r0 * 2)
	if m.BenignRadius() != r0 {
		t.Fatal("Tighten widened the radius")
	}
	m.Tighten(0)
	if m.BenignRadius() != 0 {
		t.Fatal("Tighten did not lower the radius")
	}
	for _, s := range benign {
		if m.Classify(s.Features).Benign {
			t.Fatal("zero radius still screens windows benign")
		}
	}
}

func TestTrainErrors(t *testing.T) {
	cfg := testFeatureConfig()
	if _, err := Train(nil, Config{Features: cfg}); err == nil {
		t.Error("Train accepted empty corpus")
	}
	if _, err := Train([]Sample{{Features: []float64{1}, Anomalous: false}}, Config{Features: cfg}); err == nil {
		t.Error("Train accepted wrong-dimension sample")
	}
	if _, err := Train([]Sample{{Features: make([]float64, cfg.Dim()), Anomalous: true}}, Config{Features: cfg}); err == nil {
		t.Error("Train accepted corpus with no benign windows")
	}
}

func TestModelRoundTrip(t *testing.T) {
	m, benign, anom := trainTestModel(t, true)
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Model
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.K() != m.K() || back.Prototypes() != m.Prototypes() || back.BenignRadius() != m.BenignRadius() {
		t.Fatal("round trip changed model parameters")
	}
	// Decisions must be identical before and after the round trip.
	for _, s := range append(append([]Sample{}, benign...), anom...) {
		a, b := m.Classify(s.Features), back.Classify(s.Features)
		if a.Benign != b.Benign {
			t.Fatalf("round trip flipped a decision (%v vs %v)", a, b)
		}
	}
}

func TestModelDecodeStrict(t *testing.T) {
	m, _, _ := trainTestModel(t, true)
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var raw map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(map[string]any){
		"unknown field":  func(r map[string]any) { r["surprise"] = 1 },
		"wrong version":  func(r map[string]any) { r["schema_version"] = "triage/v0" },
		"zero k":         func(r map[string]any) { r["k"] = 0 },
		"bad radius":     func(r map[string]any) { r["benign_radius"] = -1 },
		"label mismatch": func(r map[string]any) { r["labels"] = []int{} },
	}
	for name, mutate := range cases {
		var r map[string]any
		if err := json.Unmarshal(blob, &r); err != nil {
			t.Fatal(err)
		}
		mutate(r)
		doctored, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Model
		if err := json.Unmarshal(doctored, &back); err == nil {
			t.Errorf("%s: strict decode accepted doctored model", name)
		}
	}
}
