package triage

import "soundboost/internal/obs"

// Per-tier observability: screened counts confident-benign windows that
// skipped the full pipeline, escalated counts windows handed to it, and
// fastpath_ratio is screened/(screened+escalated) over the process
// lifetime. Registered on obs.Default like every other subsystem.
var (
	screenedTotal  = obs.Default.Counter("triage.screened")
	escalatedTotal = obs.Default.Counter("triage.escalated")
	fastpathRatio  = obs.Default.Gauge("triage.fastpath_ratio")
	classifyTimer  = obs.Default.Timer("triage.classify")
)

func recordScreened() {
	screenedTotal.Inc()
	updateRatio()
}

func recordEscalated() {
	escalatedTotal.Inc()
	updateRatio()
}

func updateRatio() {
	s, e := screenedTotal.Value(), escalatedTotal.Value()
	if total := s + e; total > 0 {
		fastpathRatio.Set(float64(s) / float64(total))
	}
}
