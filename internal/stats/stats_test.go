package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic set is 32/7.
	if got, want := Variance(x), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(x); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestFitNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 20000)
	for i := range x {
		x[i] = 3 + 2*rng.NormFloat64()
	}
	n, err := FitNormal(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Mu-3) > 0.05 || math.Abs(n.Sigma-2) > 0.05 {
		t.Errorf("fit = %+v, want mu=3 sigma=2", n)
	}
	if _, err := FitNormal([]float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("single sample err = %v", err)
	}
	// Constant data: sigma must stay positive so CDF remains usable.
	c, err := FitNormal([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Sigma <= 0 {
		t.Errorf("degenerate sigma = %v", c.Sigma)
	}
}

func TestNormalCDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	tests := []struct {
		v, want float64
	}{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
	}
	for _, tt := range tests {
		if got := n.CDF(tt.v); math.Abs(got-tt.want) > 1e-3 {
			t.Errorf("CDF(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 0.5}
	sum := 0.0
	const dx = 0.001
	for v := -4.0; v <= 6.0; v += dx {
		sum += n.PDF(v) * dx
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("PDF integral = %v, want 1", sum)
	}
}

func TestKSTestAcceptsMatchingDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rejections := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 200)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		r, err := KSTestNormal(x, Normal{Mu: 0, Sigma: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.Reject(0.01) {
			rejections++
		}
	}
	// At alpha=0.01, expect about 0.5 false rejections over 50 trials.
	if rejections > 5 {
		t.Errorf("%d/%d rejections of matching distribution at alpha=0.01", rejections, trials)
	}
}

func TestKSTestRejectsShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tests := []struct {
		name      string
		transform func(float64) float64
	}{
		{"mean shift", func(v float64) float64 { return v + 2 }},
		{"scale up", func(v float64) float64 { return v * 3 }},
		{"heavy tail", func(v float64) float64 { return v * v * v }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := make([]float64, 200)
			for i := range x {
				x[i] = tt.transform(rng.NormFloat64())
			}
			r, err := KSTestNormal(x, Normal{Mu: 0, Sigma: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Reject(0.01) {
				t.Errorf("failed to reject: stat=%v p=%v", r.Statistic, r.PValue)
			}
		})
	}
}

func TestKSTestEmpty(t *testing.T) {
	if _, err := KSTestNormal(nil, Normal{Sigma: 1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}

// Property: KS statistic is within [0, 1] and p-value within [0, 1].
func TestKSBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 10+rng.Intn(100))
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		r, err := KSTestNormal(x, Normal{Mu: 0, Sigma: 1})
		if err != nil {
			return false
		}
		return r.Statistic >= 0 && r.Statistic <= 1 && r.PValue >= 0 && r.PValue <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTrimOutliers(t *testing.T) {
	x := []float64{1, 1.1, 0.9, 1.05, 0.95, 50}
	out := TrimOutliers(x, 2)
	for _, v := range out {
		if v == 50 {
			t.Error("outlier survived trimming")
		}
	}
	if len(out) != 5 {
		t.Errorf("trimmed length = %d, want 5", len(out))
	}
	// Small inputs pass through.
	small := TrimOutliers([]float64{1, 2}, 1)
	if len(small) != 2 {
		t.Errorf("small input trimmed: %v", small)
	}
}

func TestMaxQuantile(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	if got := Max(x); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := Max(nil); got != 0 {
		t.Errorf("Max(nil) = %v", got)
	}
	if got := Quantile(x, 0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := Quantile(x, 1); got != 5 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := Quantile(x, 0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v", got)
	}
}

// TestQuantileEdgeCases covers the streaming-triggered inputs: 1-element
// slices, NaN contamination, and all-NaN degenerate input.
func TestQuantileEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		x    []float64
		q    float64
		want float64
	}{
		{"one element mid-quantile", []float64{7}, 0.5, 7},
		{"one element q=0", []float64{7}, 0, 7},
		{"one element q=1", []float64{7}, 1, 7},
		{"NaN ignored low", []float64{nan, 1, 3}, 0, 1},
		{"NaN ignored high", []float64{1, nan, 3}, 1, 3},
		{"NaN ignored median", []float64{1, nan, 3}, 0.5, 2},
		{"NaN single survivor", []float64{nan, 4, nan}, 0.5, 4},
		{"all NaN", []float64{nan, nan}, 0.5, 0},
		{"empty", nil, 0.5, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Quantile(tc.x, tc.q)
			if math.IsNaN(got) || math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Quantile(%v, %v) = %v, want %v", tc.x, tc.q, got, tc.want)
			}
		})
	}
}

// TestQuantileIgnoresInf is the regression test for the ±Inf hole: NaN
// was filtered but an infinite sample survived into the sort, where it
// poisons every interpolated quantile (lo*(1-f) + Inf*f = ±Inf), and
// through Quantile every calibrated detection threshold. Non-finite
// samples must all be treated alike: skipped.
func TestQuantileIgnoresInf(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		x    []float64
		q    float64
		want float64
	}{
		{"+Inf ignored at q=1", []float64{1, 3, inf}, 1, 3},
		{"+Inf ignored interpolating", []float64{1, 3, inf}, 0.75, 2.5},
		{"-Inf ignored at q=0", []float64{-inf, 1, 3}, 0, 1},
		{"-Inf ignored interpolating", []float64{-inf, 1, 3}, 0.25, 1.5},
		{"mixed Inf and NaN", []float64{inf, math.NaN(), 5, -inf}, 0.5, 5},
		{"all non-finite", []float64{inf, -inf, math.NaN()}, 0.5, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Quantile(tc.x, tc.q)
			if math.IsNaN(got) || math.IsInf(got, 0) || math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Quantile(%v, %v) = %v, want %v", tc.x, tc.q, got, tc.want)
			}
		})
	}
}

// TestRunningMeanIgnoresInf pins the same hole in the streaming monitor:
// one Inf sample would stick in the running mean forever (Inf enters
// both the cumulative and exponential recursions and never washes out),
// permanently alarming the GPS error monitor.
func TestRunningMeanIgnoresInf(t *testing.T) {
	inf := math.Inf(1)
	for _, alpha := range []float64{0, 0.5} {
		r := RunningMean{Alpha: alpha}
		r.Add(2)
		r.Add(inf)
		r.Add(-inf)
		if got := r.Mean(); got != 2 {
			t.Errorf("alpha=%v: Mean after Inf = %v, want 2 (Inf ignored)", alpha, got)
		}
		if got := r.Count(); got != 1 {
			t.Errorf("alpha=%v: Count after Inf = %d, want 1", alpha, got)
		}
		// The monitor must keep tracking finite samples afterwards.
		r.Add(4)
		if got := r.Mean(); got != 3 {
			t.Errorf("alpha=%v: Mean after recovery = %v, want 3", alpha, got)
		}
	}
}

// TestRunningMeanEdgeCases covers NaN rejection and Add-after-Reset for
// both the cumulative and exponential variants.
func TestRunningMeanEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name      string
		alpha     float64
		feed      []float64
		reset     bool // Reset between the two feeds
		feed2     []float64
		wantMean  float64
		wantCount int
	}{
		{"NaN ignored cumulative", 0, []float64{2, nan, 4}, false, nil, 3, 2},
		{"NaN ignored exponential", 0.5, []float64{2, nan}, false, nil, 2, 1},
		{"NaN first sample", 0.5, []float64{nan, 6}, false, nil, 6, 1},
		{"all NaN", 0, []float64{nan, nan}, false, nil, 0, 0},
		{"add after reset cumulative", 0, []float64{100, 200}, true, []float64{4, 6}, 5, 2},
		{"add after reset exponential reseeds", 0.5, []float64{100}, true, []float64{8}, 8, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := RunningMean{Alpha: tc.alpha}
			for _, v := range tc.feed {
				r.Add(v)
			}
			if tc.reset {
				r.Reset()
			}
			for _, v := range tc.feed2 {
				r.Add(v)
			}
			if got := r.Mean(); math.IsNaN(got) || math.Abs(got-tc.wantMean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tc.wantMean)
			}
			if got := r.Count(); got != tc.wantCount {
				t.Errorf("Count = %d, want %d", got, tc.wantCount)
			}
		})
	}
}

func TestRunningMeanCumulative(t *testing.T) {
	var r RunningMean
	for i := 1; i <= 10; i++ {
		r.Add(float64(i))
	}
	if got := r.Mean(); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("cumulative mean = %v, want 5.5", got)
	}
	if r.Count() != 10 {
		t.Errorf("Count = %d", r.Count())
	}
	r.Reset()
	if r.Mean() != 0 || r.Count() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestRunningMeanExponential(t *testing.T) {
	r := RunningMean{Alpha: 0.5}
	r.Add(0)
	r.Add(10) // 0 + 0.5*(10-0) = 5
	if got := r.Mean(); got != 5 {
		t.Errorf("exp mean = %v, want 5", got)
	}
	// Converges toward a constant input.
	for i := 0; i < 50; i++ {
		r.Add(3)
	}
	if math.Abs(r.Mean()-3) > 1e-6 {
		t.Errorf("exp mean after constant stream = %v, want 3", r.Mean())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(-1, 1, 4)
	for _, v := range []float64{-0.9, -0.1, 0.1, 0.9, 5, -5} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	// Clamped values land in edge bins.
	if h.Counts[0] != 2 || h.Counts[3] != 2 {
		t.Errorf("edge bins = %v", h.Counts)
	}
	if got := h.BinCenter(0); math.Abs(got-(-0.75)) > 1e-12 {
		t.Errorf("BinCenter(0) = %v", got)
	}
	// Density integrates to 1.
	var integral float64
	w := 0.5
	for i := range h.Counts {
		integral += h.Density(i) * w
	}
	if math.Abs(integral-1) > 1e-12 {
		t.Errorf("density integral = %v", integral)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(1, 1, 0)
	h.Add(1)
	if h.Total() != 1 {
		t.Error("degenerate histogram unusable")
	}
	empty := NewHistogram(0, 1, 2)
	if empty.Density(0) != 0 {
		t.Error("empty density != 0")
	}
}

func TestConfusionCounts(t *testing.T) {
	var c ConfusionCounts
	// 19 attacks: 15 detected; 30 benign: 7 alerted (Tab. II audio-only).
	for i := 0; i < 19; i++ {
		c.Record(true, i < 15)
	}
	for i := 0; i < 30; i++ {
		c.Record(false, i < 7)
	}
	if math.Abs(c.TPR()-15.0/19) > 1e-12 {
		t.Errorf("TPR = %v", c.TPR())
	}
	if math.Abs(c.FPR()-7.0/30) > 1e-12 {
		t.Errorf("FPR = %v", c.FPR())
	}
	var empty ConfusionCounts
	if empty.TPR() != 0 || empty.FPR() != 0 {
		t.Error("empty counts should give 0 rates")
	}
}

func TestROCAndAUC(t *testing.T) {
	// Perfect separation: all attack scores above all benign scores.
	benign := []float64{0.1, 0.2, 0.3}
	attack := []float64{0.7, 0.8, 0.9}
	curve := ROC(benign, attack)
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	if got := AUC(curve); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("perfect AUC = %v, want 1", got)
	}
	// FPR non-decreasing along the curve.
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR {
			t.Fatalf("FPR decreased at %d", i)
		}
	}
	// Fully overlapping scores: AUC ~ 0.5.
	same := []float64{1, 2, 3, 4}
	curve = ROC(same, same)
	if got := AUC(curve); math.Abs(got-0.5) > 0.1 {
		t.Errorf("chance AUC = %v, want ~0.5", got)
	}
	if ROC(nil, nil) != nil {
		t.Error("empty ROC should be nil")
	}
}
