// Package stats provides the statistical machinery of SoundBoost's RCA
// decisions: normal-distribution fitting of benign residuals, the
// Kolmogorov-Smirnov test used for IMU attack detection (§III-C1), the
// running-mean error detector used for GPS spoofing detection (§III-C2),
// outlier trimming, and TPR/FPR bookkeeping.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a statistic needs more samples.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance (0 for fewer than 2 points).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Normal is a fitted normal distribution.
type Normal struct {
	Mu    float64
	Sigma float64
}

// FitNormal estimates a Normal from samples. It requires at least two
// samples and a non-degenerate spread.
func FitNormal(x []float64) (Normal, error) {
	if len(x) < 2 {
		return Normal{}, ErrInsufficientData
	}
	n := Normal{Mu: Mean(x), Sigma: StdDev(x)}
	if n.Sigma == 0 {
		n.Sigma = 1e-12
	}
	return n, nil
}

// CDF evaluates the cumulative distribution function at v.
func (n Normal) CDF(v float64) float64 {
	return 0.5 * math.Erfc(-(v-n.Mu)/(n.Sigma*math.Sqrt2))
}

// PDF evaluates the probability density function at v.
func (n Normal) PDF(v float64) float64 {
	z := (v - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// KSResult is the outcome of a one-sample Kolmogorov-Smirnov test.
type KSResult struct {
	// Statistic is the maximum CDF deviation D_n.
	Statistic float64
	// PValue approximates P(D > observed) under H0.
	PValue float64
	// N is the sample count.
	N int
}

// Reject reports whether H0 (samples drawn from the reference) is rejected
// at significance level alpha.
func (r KSResult) Reject(alpha float64) bool { return r.PValue < alpha }

// KSTestNormal runs a one-sample KS test of samples against the reference
// normal distribution. This is SoundBoost's IMU attack decision: benign
// residuals follow the fitted benign normal; attack residuals do not.
func KSTestNormal(samples []float64, ref Normal) (KSResult, error) {
	n := len(samples)
	if n == 0 {
		return KSResult{}, ErrInsufficientData
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	d := 0.0
	for i, v := range sorted {
		cdf := ref.CDF(v)
		upper := float64(i+1)/float64(n) - cdf
		lower := cdf - float64(i)/float64(n)
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return KSResult{Statistic: d, PValue: ksPValue(d, n), N: n}, nil
}

// ksPValue evaluates the asymptotic Kolmogorov distribution tail
// Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2) with the
// standard small-sample correction (Stephens).
func ksPValue(d float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	if lambda < 1e-3 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	return math.Max(0, math.Min(1, p))
}

// TrimOutliers returns x with values outside k standard deviations of the
// mean removed. The paper trims benign running-mean errors before taking
// their maximum as the GPS detection threshold.
func TrimOutliers(x []float64, k float64) []float64 {
	if len(x) < 3 {
		return append([]float64(nil), x...)
	}
	m := Mean(x)
	s := StdDev(x)
	out := make([]float64, 0, len(x))
	for _, v := range x {
		if math.Abs(v-m) <= k*s {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return append([]float64(nil), x...)
	}
	return out
}

// Max returns the maximum of x (0 for empty input).
func Max(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of x by linear
// interpolation of the sorted samples. Non-finite samples (NaN, ±Inf)
// are ignored — a lossy telemetry stream must not be able to poison a
// calibrated threshold, and a single +Inf would otherwise bleed into
// every interpolated quantile, not just q=1 — and a single-element input
// returns that element for every q. Returns 0 when no finite samples
// remain.
func Quantile(x []float64, q float64) float64 {
	sorted := make([]float64, 0, len(x))
	for _, v := range x {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			sorted = append(sorted, v)
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RunningMean tracks the running mean of a stream with an optional
// exponential forgetting factor; SoundBoost monitors the running mean of
// GPS-vs-estimate velocity error and alarms when it exceeds a threshold.
type RunningMean struct {
	// Alpha in (0,1] is the exponential weight of the newest sample;
	// 0 means a plain cumulative mean.
	Alpha float64

	mean  float64
	count int
}

// Add feeds a sample and returns the updated mean. Non-finite samples
// (NaN, ±Inf) are ignored (returning the current mean unchanged): one
// corrupt telemetry row must not poison the monitor for the rest of the
// stream — an Inf would stick in the mean forever, which NaN-only
// filtering missed. After Reset the next sample re-seeds the mean
// exactly as the first ever sample did.
func (r *RunningMean) Add(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return r.mean
	}
	r.count++
	if r.Alpha > 0 {
		if r.count == 1 {
			r.mean = v
		} else {
			r.mean += r.Alpha * (v - r.mean)
		}
	} else {
		r.mean += (v - r.mean) / float64(r.count)
	}
	return r.mean
}

// Mean returns the current mean.
func (r *RunningMean) Mean() float64 { return r.mean }

// Count returns the number of samples seen.
func (r *RunningMean) Count() int { return r.count }

// Reset clears the accumulator.
func (r *RunningMean) Reset() { r.mean = 0; r.count = 0 }

// Histogram bins samples uniformly over [lo, hi]; used to regenerate the
// residual-distribution figures (Fig. 6).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records a sample (values outside the range clamp to the edge bins).
func (h *Histogram) Add(v float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Density returns the normalized density of bin i (integrates to ~1).
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.total) * w)
}

// ConfusionCounts accumulates binary detection outcomes.
type ConfusionCounts struct {
	TP, FP, TN, FN int
}

// Record adds one labelled outcome.
func (c *ConfusionCounts) Record(attack, alerted bool) {
	switch {
	case attack && alerted:
		c.TP++
	case attack && !alerted:
		c.FN++
	case !attack && alerted:
		c.FP++
	default:
		c.TN++
	}
}

// TPR returns the true positive rate (0 when no positives were seen).
func (c ConfusionCounts) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns the false positive rate (0 when no negatives were seen).
func (c ConfusionCounts) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// ROCPoint is one operating point of a score-threshold detector.
type ROCPoint struct {
	// Threshold is the decision level (alarm when score > Threshold).
	Threshold float64
	// TPR and FPR are the rates at this threshold.
	TPR float64
	FPR float64
}

// ROC sweeps thresholds over the union of benign and attack peak scores and
// returns the operating curve, sorted by descending threshold (so FPR is
// non-decreasing along the slice). It lets detector calibrations be judged
// against the whole trade-off rather than a single point.
func ROC(benignScores, attackScores []float64) []ROCPoint {
	if len(benignScores) == 0 && len(attackScores) == 0 {
		return nil
	}
	all := make([]float64, 0, len(benignScores)+len(attackScores))
	all = append(all, benignScores...)
	all = append(all, attackScores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	thresholds := append([]float64{math.Inf(1)}, all...)
	thresholds = append(thresholds, math.Inf(-1)) // final point: alarm on everything
	var out []ROCPoint
	prev := math.NaN()
	for _, thr := range thresholds {
		if thr == prev {
			continue
		}
		prev = thr
		var c ConfusionCounts
		for _, s := range attackScores {
			c.Record(true, s > thr)
		}
		for _, s := range benignScores {
			c.Record(false, s > thr)
		}
		out = append(out, ROCPoint{Threshold: thr, TPR: c.TPR(), FPR: c.FPR()})
	}
	return out
}

// AUC integrates the ROC curve by the trapezoid rule.
func AUC(curve []ROCPoint) float64 {
	if len(curve) < 2 {
		return 0
	}
	auc := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		auc += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return auc
}
