package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"soundboost/api"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/faults"
)

// routes builds the /v1 route table. This is the server's router layer:
// every wire-visible path is registered here and nowhere else, so the
// fleet gateway (which re-serves the same surface) has one place to
// mirror.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /"+api.Version+"/flights", s.handleFlights)
	mux.HandleFunc("POST /"+api.Version+"/sessions", s.handleSessionCreate)
	mux.HandleFunc("POST /"+api.Version+"/sessions/{id}/frames", s.handleFrames)
	mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/report", s.handleReport)
	mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/status", s.handleStatus)
	mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/journal", s.handleJournalExport)
	mux.HandleFunc("POST /"+api.Version+"/sessions/{id}/journal/append", s.handleJournalAppend)
	mux.HandleFunc("GET /"+api.Version+"/healthz", s.handleHealthz)
	return mux
}

// handleFlights runs batch RCA over an uploaded .sbf recording. The
// request body is the raw flight file; admission is bounded by the job
// limiter and sheds with 429 when saturated.
func (s *Server) handleFlights(w http.ResponseWriter, r *http.Request) {
	span := flightsTimer.Start()
	defer span.Stop()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.writeError(w, errShuttingDown)
		return
	}
	if !s.jobs.TryAcquire() {
		jobsRejected.Inc()
		s.writeError(w, fmt.Errorf("%w: %d batch jobs in flight (cap %d)",
			faults.ErrCapacity, s.jobs.InUse(), s.jobs.Cap()))
		return
	}
	start := s.now()
	flight, err := dataset.Load(r.Body)
	if err != nil {
		s.jobs.Release()
		s.writeError(w, fmt.Errorf("%w: %v", faults.ErrUnprocessable, err))
		return
	}

	// Run the analysis on a goroutine that owns the limiter slot, so a
	// wedged or slow analysis cannot hold the slot past its own return
	// even after the handler gives up on it: the slot frees exactly when
	// the work stops, and a panic inside the analyzer frees it too.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.BatchTimeout)
	defer cancel()
	type result struct {
		report soundboost.Report
		err    error
	}
	ch := make(chan result, 1) // buffered: the handler may be gone
	go func() {
		defer s.jobs.Release()
		defer func() {
			if p := recover(); p != nil {
				ch <- result{err: fmt.Errorf("batch analysis panic: %v", p)}
			}
		}()
		report, err := s.an.Analyze(flight)
		ch <- result{report, err}
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			s.writeError(w, res.err)
			return
		}
		s.writeJSON(w, http.StatusOK, api.FlightResponse{
			Report:         api.ReportFromCore(res.report),
			ElapsedSeconds: s.now().Sub(start).Seconds(),
		})
	case <-ctx.Done():
		// Client gone or deadline hit: shed the request. The analysis
		// keeps its slot until it returns — that is backpressure working,
		// not a leak — and new requests see 429 while it unwinds.
		jobsTimedOut.Inc()
		s.writeError(w, fmt.Errorf("%w after %s", faults.ErrTimeout,
			s.now().Sub(start).Round(time.Millisecond)))
	}
}

// handleSessionCreate opens a streaming session.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	span := sessionsTimer.Start()
	defer span.Stop()
	var req api.SessionRequest
	if err := api.DecodeStrict(r.Body, &req); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	sess, err := s.createSession(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, api.SessionResponse{
		SchemaVersion: api.Version,
		ID:            sess.id,
		State:         sess.stateNow(),
	})
}

// handleFrames feeds one batch of telemetry into a session's bus. The
// three streams are merged by timestamp (stable: audio before IMU
// before GPS at equal times, matching stream.Replay) and published in
// order.
func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	span := framesTimer.Start()
	defer span.Stop()
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req api.FramesRequest
	if err := api.DecodeStrict(r.Body, &req); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	switch st := sess.stateNow(); st {
	case api.SessionOpen:
	case api.SessionFailed:
		s.writeError(w, fmt.Errorf("%w: %q: %s", faults.ErrSessionFailed, sess.id, sess.snapshot(s.now()).FailCause))
		return
	default:
		s.writeError(w, fmt.Errorf("%w: %q", faults.ErrSessionClosed, sess.id))
		return
	}
	sess.touch(s.now())
	accepted, duplicate, err := sess.publish(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	framesAccepted.Add(int64(accepted))
	// Close is honored even on a duplicate resend: the original ack may
	// have been lost after the chunk was accepted but before the close
	// transition, and closeStream is idempotent either way.
	if req.Close {
		if sess.closeStream() {
			sessionsClosed.Inc()
			s.logf("session %s closed by client", sess.id)
		}
	}
	s.writeJSON(w, http.StatusOK, api.FramesResponse{
		SchemaVersion: api.Version,
		Accepted:      accepted,
		Shed:          sess.bus.Dropped(),
		State:         sess.stateNow(),
		Duplicate:     duplicate,
	})
}

// handleReport returns a session's final verdict. The stream must be
// closed first (409 otherwise); the handler then waits for the engine's
// flush, bounded by the request context.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	span := reportTimer.Start()
	defer span.Stop()
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if sess.stateNow() == api.SessionOpen {
		s.writeError(w, fmt.Errorf("%w: %q (close the stream first)", faults.ErrSessionOpen, sess.id))
		return
	}
	select {
	case <-sess.done:
	case <-r.Context().Done():
		return // client gave up while the engine was flushing
	}
	sess.mu.Lock()
	report, runErr := sess.report, sess.runErr
	sess.mu.Unlock()
	if runErr != nil {
		s.writeError(w, runErr)
		return
	}
	s.writeJSON(w, http.StatusOK, api.ReportFromCore(report))
}

// handleStatus returns a live session snapshot. Status polls do not
// refresh the idle timeout — only frames keep a session alive.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	span := statusTimer.Start()
	defer span.Stop()
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, sess.snapshot(s.now()))
}

// handleJournalExport serves a session's durable journal — the original
// SessionRequest plus every acknowledged chunk — as one JSON document.
// This is the fleet handoff path: a gateway draining this replica
// fetches the export and replays it through a successor's normal
// publish path, reproducing the verdict byte-identically (see DESIGN.md
// "Fleet routing & handoff"). Requires journaling; a server running
// without -journal has nothing durable to export (409).
func (s *Server) handleJournalExport(w http.ResponseWriter, r *http.Request) {
	span := journalExportTimer.Start()
	defer span.Stop()
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		// Not a session this server owns — but it may be a follower copy
		// replicated here for a session served elsewhere, and a gateway
		// whose owner (and owner's disk) died fetches it through this
		// same route.
		if s.exportFollower(w, r.PathValue("id")) {
			return
		}
		s.writeError(w, err)
		return
	}
	if s.journal == nil {
		s.writeError(w, fmt.Errorf("%w: journaling disabled, session %q has no durable log", faults.ErrSessionOpen, sess.id))
		return
	}
	// Serialize against publication so the export is a consistent prefix
	// of the chunk stream: no chunk is half-appended while we read.
	sess.pubMu.Lock()
	rec, err := s.journal.LoadSession(sess.id)
	sess.pubMu.Unlock()
	if err != nil {
		s.writeError(w, err)
		return
	}
	if rec.Corrupt != "" {
		s.writeError(w, fmt.Errorf("%w: %q: %s", faults.ErrSessionFailed, sess.id, rec.Corrupt))
		return
	}
	snap := sess.snapshot(s.now())
	exp := api.SessionJournal{
		SchemaVersion: api.Version,
		ID:            sess.id,
		Request:       rec.Meta.Req,
		State:         snap.State,
		LastSeq:       snap.LastSeq,
		FailCause:     snap.FailCause,
		Chunks:        rec.Chunks,
	}
	journalExports.Inc()
	s.writeJSON(w, http.StatusOK, exp)
}

// handleHealthz reports liveness and occupancy.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	n := len(s.sessions)
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, api.Health{
		SchemaVersion:  api.Version,
		Status:         status,
		ActiveSessions: n,
		SessionCap:     s.cfg.MaxSessions,
		JobsInFlight:   s.jobs.InUse(),
		JobCap:         s.jobs.Cap(),
	})
}

// --- response plumbing ---

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeBadRequest reports a body that failed strict decoding (400).
func (s *Server) writeBadRequest(w http.ResponseWriter, err error) {
	httpErrors.Inc()
	s.writeJSON(w, http.StatusBadRequest, api.Error{Code: api.CodeBadRequest, Error: err.Error()})
}

// writeError maps the shared fault vocabulary onto HTTP statuses: this
// is the single place wire status codes are decided.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	httpErrors.Inc()
	status, code := http.StatusInternalServerError, api.CodeInternal
	switch {
	case errors.Is(err, faults.ErrSessionNotFound):
		status, code = http.StatusNotFound, api.CodeNotFound
	case errors.Is(err, faults.ErrSessionFailed):
		status, code = http.StatusInternalServerError, api.CodeSessionFailed
	case errors.Is(err, faults.ErrTimeout):
		status, code = http.StatusServiceUnavailable, api.CodeTimeout
	case errors.Is(err, faults.ErrSessionClosed),
		errors.Is(err, faults.ErrSessionOpen),
		errors.Is(err, faults.ErrSeqGap),
		errors.Is(err, faults.ErrBusClosed):
		status, code = http.StatusConflict, api.CodeConflict
	case errors.Is(err, faults.ErrNoFlight),
		errors.Is(err, faults.ErrUnprocessable):
		status, code = http.StatusUnprocessableEntity, api.CodeUnprocessable
	case errors.Is(err, faults.ErrCapacity):
		status, code = http.StatusTooManyRequests, api.CodeCapacity
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
	case errors.Is(err, errShuttingDown):
		status, code = http.StatusServiceUnavailable, api.CodeShuttingDown
	case isMaxBytes(err):
		status, code = http.StatusRequestEntityTooLarge, api.CodeBadRequest
	}
	s.writeJSON(w, status, api.Error{Code: code, Error: err.Error()})
}

// isMaxBytes detects http.MaxBytesReader truncation surfaced through
// decode/load errors.
func isMaxBytes(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe) || strings.Contains(err.Error(), "request body too large")
}
