package server

import (
	"testing"

	"soundboost/internal/leakcheck"
)

// TestMain fails the suite if any test leaks a goroutine — a session
// engine that outlived its server, a janitor that missed its stop
// signal, a batch analysis goroutine that never released its slot.
func TestMain(m *testing.M) { leakcheck.Main(m) }
