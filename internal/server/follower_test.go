package server

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"soundboost/api"
)

// shutdownNow drains a server mid-test (restart scenarios); the
// registered cleanup's second Shutdown is idempotent.
func shutdownNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// followerChunks builds a session request plus chunked frames for the
// fixture's first calibration flight — the payload a gateway would
// replicate.
func followerChunks(t *testing.T, nBatches int) (api.SessionRequest, []api.FramesRequest) {
	t.Helper()
	f := getFixture(t).calib[0]
	reqs, err := framesFromFlight(f, nBatches)
	if err != nil {
		t.Fatal(err)
	}
	return api.SessionRequest{Flight: f.Name, SampleRateHz: f.Audio.SampleRate}, reqs
}

// appendChunk replicates one chunk to the follower endpoint. The
// replication seq is the chunk's position in the stream (1-based),
// independent of the chunk's own client seq.
func appendChunk(t *testing.T, s *Server, id string, seq int, req api.SessionRequest, chunk api.FramesRequest) *api.JournalAppendResponse {
	t.Helper()
	w := do(t, s, "POST", "/v1/sessions/"+id+"/journal/append", api.JournalAppend{
		SchemaVersion: api.Version, Seq: seq, Request: req, Chunk: chunk,
	})
	resp := decode[api.JournalAppendResponse](t, w, http.StatusOK)
	return &resp
}

// TestFollowerAppendExport drives the full replica-side replication
// contract: in-order appends ack with the advancing high-water mark,
// duplicates absorb, gaps 409, and the journal-export route serves the
// copy back byte-for-byte under the gateway's session id.
func TestFollowerAppendExport(t *testing.T) {
	s := newTestServer(t, Config{JournalDir: t.TempDir(), Logf: t.Logf})
	req, chunks := followerChunks(t, 3)
	const id = "g-00000001"

	for i, c := range chunks {
		resp := appendChunk(t, s, id, i+1, req, c)
		if resp.LastSeq != i+1 || resp.Duplicate {
			t.Fatalf("append %d: resp %+v", i+1, resp)
		}
	}
	// A retried append (the gateway lost the ack) is absorbed.
	if resp := appendChunk(t, s, id, 2, req, chunks[1]); !resp.Duplicate || resp.LastSeq != len(chunks) {
		t.Fatalf("duplicate append: resp %+v", resp)
	}
	// A gap is rejected so the gateway reseeds instead of leaving a hole.
	w := do(t, s, "POST", "/v1/sessions/"+id+"/journal/append", api.JournalAppend{
		SchemaVersion: api.Version, Seq: len(chunks) + 5, Request: req, Chunk: chunks[0],
	})
	errCode(t, w, http.StatusConflict, api.CodeConflict)

	// The copy exports through the normal journal route even though the
	// id is not a session this server owns.
	exp := decode[api.SessionJournal](t, do(t, s, "GET", "/v1/sessions/"+id+"/journal", nil), http.StatusOK)
	if exp.ID != id {
		t.Fatalf("export id = %q", exp.ID)
	}
	if !reflect.DeepEqual(exp.Request, req) {
		t.Fatalf("export request = %+v, want %+v", exp.Request, req)
	}
	if !reflect.DeepEqual(exp.Chunks, chunks) {
		t.Fatalf("export chunks do not round-trip (%d vs %d)", len(exp.Chunks), len(chunks))
	}
	if exp.LastSeq != chunks[len(chunks)-1].Seq {
		t.Fatalf("export last_seq = %d, want %d", exp.LastSeq, chunks[len(chunks)-1].Seq)
	}

	// An id with neither a session nor a copy is still a 404.
	errCode(t, do(t, s, "GET", "/v1/sessions/g-99999999/journal", nil), http.StatusNotFound, api.CodeNotFound)
}

// TestFollowerAppendRequiresJournal pins the 409 on replicas running
// without -journal: a copy that cannot be persisted is not a copy.
func TestFollowerAppendRequiresJournal(t *testing.T) {
	s := newTestServer(t, Config{Logf: t.Logf})
	req, chunks := followerChunks(t, 2)
	w := do(t, s, "POST", "/v1/sessions/g-00000001/journal/append", api.JournalAppend{
		SchemaVersion: api.Version, Seq: 1, Request: req, Chunk: chunks[0],
	})
	errCode(t, w, http.StatusConflict, api.CodeConflict)
}

// TestFollowerCopySurvivesRestart rebuilds a copy's high-water mark from
// disk after the process restarts: replication resumes exactly where it
// stopped, and the export still carries every chunk.
func TestFollowerCopySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req, chunks := followerChunks(t, 4)
	const id = "g-00000007"

	s1 := newTestServer(t, Config{JournalDir: dir, Logf: t.Logf})
	appendChunk(t, s1, id, 1, req, chunks[0])
	appendChunk(t, s1, id, 2, req, chunks[1])
	shutdownNow(t, s1)

	s2 := newTestServer(t, Config{JournalDir: dir, Logf: t.Logf})
	// The restarted server re-learns lastSeq=2 lazily from disk: a
	// duplicate absorbs, the next seq appends.
	if resp := appendChunk(t, s2, id, 2, req, chunks[1]); !resp.Duplicate {
		t.Fatalf("resumed duplicate: resp %+v", resp)
	}
	appendChunk(t, s2, id, 3, req, chunks[2])
	appendChunk(t, s2, id, 4, req, chunks[3])
	exp := decode[api.SessionJournal](t, do(t, s2, "GET", "/v1/sessions/"+id+"/journal", nil), http.StatusOK)
	if !reflect.DeepEqual(exp.Chunks, chunks) {
		t.Fatalf("export after restart: %d chunks, want %d", len(exp.Chunks), len(chunks))
	}
}

// TestRecoveryCleansEmptyJournals pins crash-mid-create debris handling:
// a blank meta and an orphan chunk log are reclaimed at startup as
// never-started sessions — not recovered, not surfaced as corrupt.
func TestRecoveryCleansEmptyJournals(t *testing.T) {
	dir := t.TempDir()
	// Blank meta (crash before the first atomic write landed) …
	if err := os.WriteFile(filepath.Join(dir, "s-00000001.meta.json"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// … and an orphan chunk log whose meta never existed.
	if err := os.WriteFile(filepath.Join(dir, "s-00000002.chunks.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{JournalDir: dir, Logf: t.Logf})
	h := decode[api.Health](t, do(t, s, "GET", "/v1/healthz", nil), http.StatusOK)
	if h.ActiveSessions != 0 {
		t.Fatalf("recovered %d session(s) from empty journals", h.ActiveSessions)
	}
	for _, name := range []string{"s-00000001.meta.json", "s-00000002.chunks.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s not cleaned up (err %v)", name, err)
		}
	}
	// A fresh session under a cleaned id works normally.
	runSession(t, s, getFixture(t).calib[0], 2)
}
