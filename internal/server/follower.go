package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"soundboost/api"
	"soundboost/internal/faults"
	"soundboost/internal/journal"
)

// Follower journal copies: the replica-side half of fleet journal
// replication (see DESIGN.md "Replication & availability contract").
// A gateway serving a session on some OTHER replica streams each
// accepted chunk here too, so this replica holds a durable copy it can
// hand back if the owner — and the owner's disk — are both lost.
//
// Copies are keyed by the GATEWAY's session id (gw-unique, "g-…"), not
// a local backend id: this server also allocates its own "s-…" ids for
// sessions it owns, and the two namespaces collide across replicas.
// Copies live in a "followers/" subdirectory of the journal dir, in the
// standard journal format, so the existing export path can serve them
// and a future owner can replay them chunk-for-chunk.
//
// The ack contract mirrors the owner's publish path: an append is
// fsynced before the 200 (losing an acked copy would make the follower
// fallback a lie), a seq at or below the high-water mark is absorbed as
// a duplicate, and a seq that skips ahead is rejected with a 409 so the
// gateway reseeds the copy from a full export.

// followerCopy is one replicated session journal this server holds on
// behalf of the fleet.
type followerCopy struct {
	sj        *journal.Session
	lastSeq   int // replication high-water mark (chunk count, not chunk.Seq)
	lastTouch time.Time
	closed    bool // stream end seen (Chunk.Close); handle released
}

// openFollowerStore attaches the follower store under the journal dir.
// Copies surviving a restart are reattached lazily: the first append or
// export for an id rebuilds its entry from disk.
func (s *Server) openFollowerStore() error {
	st, err := journal.Open(filepath.Join(s.journal.Dir(), "followers"))
	if err != nil {
		return fmt.Errorf("server: follower store: %w", err)
	}
	s.followers = st
	s.followerCopies = make(map[string]*followerCopy)
	return nil
}

// followerCopyLocked resolves (or lazily rebuilds from disk) the copy
// for id. Caller holds s.followerMu. Returns nil when nothing exists
// yet and create is false.
func (s *Server) followerCopyLocked(id string, create bool) (*followerCopy, error) {
	if fc, ok := s.followerCopies[id]; ok {
		return fc, nil
	}
	fc := &followerCopy{lastTouch: s.now()}
	rec, err := s.followers.LoadSession(id)
	if err != nil && !create {
		return nil, nil
	}
	if err == nil {
		// A copy from a previous process life: resume past its chunks.
		// Replication seq is position in the stream, so the high-water
		// mark is simply how many chunks landed.
		fc.lastSeq = len(rec.Chunks)
	} else if !errors.Is(err, os.ErrNotExist) {
		// Empty (crash mid-create) or unreadable debris: start the copy
		// over — the gateway's reseed protocol refills it from a full
		// export, so nothing replicated is lost by discarding it.
		s.followers.RemoveSession(id)
	}
	sj, err := s.followers.Session(id)
	if err != nil {
		return nil, err
	}
	fc.sj = sj
	s.followerCopies[id] = fc
	followerSessions.Set(float64(len(s.followerCopies)))
	return fc, nil
}

// handleJournalAppend accepts one replicated chunk for a session served
// elsewhere in the fleet. Requires journaling (409 without -journal:
// a copy this server cannot persist is not a copy).
func (s *Server) handleJournalAppend(w http.ResponseWriter, r *http.Request) {
	span := followerAppendTimer.Start()
	defer span.Stop()
	id := r.PathValue("id")
	if s.followers == nil {
		s.writeError(w, fmt.Errorf("%w: journaling disabled, cannot hold follower copy %q",
			faults.ErrSessionOpen, id))
		return
	}
	var req api.JournalAppend
	if err := api.DecodeStrict(r.Body, &req); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	if req.Seq <= 0 {
		s.writeBadRequest(w, fmt.Errorf("journal append %q: seq must be positive, got %d", id, req.Seq))
		return
	}

	s.followerMu.Lock()
	defer s.followerMu.Unlock()
	fc, err := s.followerCopyLocked(id, true)
	if err != nil {
		s.writeError(w, err)
		return
	}
	fc.lastTouch = s.now()
	if req.Seq <= fc.lastSeq {
		// Gateway retry after a lost ack: absorb, don't re-append.
		s.writeJSON(w, http.StatusOK, api.JournalAppendResponse{
			SchemaVersion: api.Version, ID: id, LastSeq: fc.lastSeq, Duplicate: true,
		})
		return
	}
	if req.Seq != fc.lastSeq+1 {
		// The gateway reacts to the gap by reseeding this copy from a
		// full export, so the hole never persists.
		s.writeError(w, fmt.Errorf("%w: follower copy %q got seq %d, want %d",
			faults.ErrSeqGap, id, req.Seq, fc.lastSeq+1))
		return
	}
	if fc.lastSeq == 0 {
		// First chunk of the copy: land the meta (the original
		// SessionRequest — everything a replay needs to rebuild the
		// engine) before any chunk is acknowledged.
		if err := fc.sj.WriteMeta(journal.Meta{ID: id, Req: req.Request, State: api.SessionOpen}); err != nil {
			s.writeError(w, fmt.Errorf("server: follower meta: %w", err))
			return
		}
	}
	if fc.closed {
		// The stream was closed but a straggler (post-reseed) append
		// arrived: reopen the log for append.
		sj, err := s.followers.Session(id)
		if err != nil {
			s.writeError(w, err)
			return
		}
		fc.sj, fc.closed = sj, false
	}
	if err := fc.sj.AppendChunk(req.Chunk); err != nil {
		s.writeError(w, fmt.Errorf("server: follower append: %w", err))
		return
	}
	fc.lastSeq = req.Seq
	followerAppends.Inc()
	if req.Chunk.Close {
		// End of stream: checkpoint the state and release the handle —
		// the copy now only matters as a failover source.
		if err := fc.sj.WriteMeta(journal.Meta{ID: id, Req: req.Request, State: api.SessionDraining, LastSeq: fc.lastSeq}); err != nil {
			s.writeError(w, fmt.Errorf("server: follower meta: %w", err))
			return
		}
		fc.sj.CloseChunks()
		fc.closed = true
	}
	s.writeJSON(w, http.StatusOK, api.JournalAppendResponse{
		SchemaVersion: api.Version, ID: id, LastSeq: fc.lastSeq,
	})
}

// exportFollower serves a follower copy through the journal-export
// route when the id is not a session this server owns. Reports false
// when no copy exists (the caller falls back to its own error).
func (s *Server) exportFollower(w http.ResponseWriter, id string) bool {
	if s.followers == nil {
		return false
	}
	s.followerMu.Lock()
	defer s.followerMu.Unlock()
	fc, err := s.followerCopyLocked(id, false)
	if err != nil || fc == nil {
		return false
	}
	rec, err := s.followers.LoadSession(id)
	if err != nil {
		s.writeError(w, err)
		return true
	}
	if rec.Corrupt != "" {
		s.writeError(w, fmt.Errorf("%w: follower copy %q: %s", faults.ErrSessionFailed, id, rec.Corrupt))
		return true
	}
	// LastSeq on the wire is the CLIENT's chunk seq, not the replication
	// seq: scan the copy for the highest one so the new owner resumes at
	// the right place.
	lastSeq := 0
	for _, c := range rec.Chunks {
		if c.Seq > lastSeq {
			lastSeq = c.Seq
		}
	}
	followerExports.Inc()
	s.writeJSON(w, http.StatusOK, api.SessionJournal{
		SchemaVersion: api.Version,
		ID:            id,
		Request:       rec.Meta.Req,
		State:         rec.Meta.State,
		LastSeq:       lastSeq,
		Chunks:        rec.Chunks,
	})
	return true
}

// sweepFollowers ages out idle copies: the handle is released after the
// idle timeout (reattached lazily on the next touch) and the files are
// reclaimed after the hard session deadline — by then the session the
// copy shadows is long finished, so keeping a ghost journal only grows
// the disk. Called from the janitor.
func (s *Server) sweepFollowers(now time.Time) {
	if s.followers == nil {
		return
	}
	s.followerMu.Lock()
	defer s.followerMu.Unlock()
	for id, fc := range s.followerCopies {
		idle := now.Sub(fc.lastTouch)
		if idle > s.cfg.MaxSessionAge {
			fc.sj.Remove()
			delete(s.followerCopies, id)
			followerExpired.Inc()
			s.logf("follower copy %s reclaimed (idle %s)", id, idle.Round(time.Second))
		} else if idle > s.cfg.IdleTimeout && !fc.closed {
			fc.sj.CloseChunks()
			fc.closed = true
		}
	}
	followerSessions.Set(float64(len(s.followerCopies)))
}

// closeFollowers releases every copy's file handle at shutdown (the
// files stay: they are the durable copies).
func (s *Server) closeFollowers() {
	if s.followers == nil {
		return
	}
	s.followerMu.Lock()
	defer s.followerMu.Unlock()
	for _, fc := range s.followerCopies {
		fc.sj.CloseChunks()
	}
}
