package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"soundboost/api"
	"soundboost/internal/attack"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

// testGenConfig mirrors the reduced-rate configuration the core and
// stream tests use (4 kHz audio, 125 Hz telemetry) so the fixture stays
// fast while the sample arithmetic stays representative.
func testGenConfig(mission sim.Mission, seed int64) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(mission, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	cfg.World.Controller.MaxVel = 3.0
	return cfg
}

type fixture struct {
	calib    []*dataset.Flight
	analyzer *soundboost.Analyzer
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		f := &fixture{}
		missions := []sim.Mission{
			sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14},
			sim.NewWaypointMission("dash", mathx.Vec3{Z: -10}, []sim.Waypoint{
				{Pos: mathx.Vec3{X: 8, Z: -10}, Speed: 2, HoldSeconds: 2},
				{Pos: mathx.Vec3{Z: -10}, Speed: 2, HoldSeconds: 2},
			}),
			sim.NewWaypointMission("column", mathx.Vec3{Z: -10}, []sim.Waypoint{
				{Pos: mathx.Vec3{Z: -14}, Speed: 1.5, HoldSeconds: 2},
				{Pos: mathx.Vec3{Z: -10}, Speed: 1.5, HoldSeconds: 2},
			}),
		}
		var train []*dataset.Flight
		seed := int64(700)
		for rep := 0; rep < 2; rep++ {
			for _, m := range missions {
				fl, err := dataset.Generate(testGenConfig(m, seed))
				if err != nil {
					fixErr = err
					return
				}
				train = append(train, fl)
				seed += 7
			}
		}
		for _, m := range missions {
			fl, err := dataset.Generate(testGenConfig(m, seed))
			if err != nil {
				fixErr = err
				return
			}
			f.calib = append(f.calib, fl)
			seed += 7
		}
		sig := soundboost.DefaultSignatureConfig(testGenConfig(missions[0], 0).Synth)
		mcfg := soundboost.DefaultMappingConfig(sig)
		mcfg.Hidden = 48
		mcfg.Train.Epochs = 100
		model, _, err := soundboost.TrainModel(train, nil, mcfg)
		if err != nil {
			fixErr = err
			return
		}
		an, err := soundboost.NewAnalyzer(model, f.calib)
		if err != nil {
			fixErr = err
			return
		}
		f.analyzer = an
		fix = f
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

func gpsAttackFlight(t *testing.T, seed int64) *dataset.Flight {
	t.Helper()
	cfg := testGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 20}, seed)
	cfg.Scenario = attack.Scenario{Name: "gps-drift", GPS: &attack.GPSSpoofer{
		Window:      attack.Window{Start: 6, End: 18},
		Mode:        attack.GPSSpoofDrift,
		SpoofOffset: mathx.Vec3{X: 24},
	}}
	f, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func imuAttackFlight(t *testing.T, seed int64) *dataset.Flight {
	t.Helper()
	cfg := testGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14}, seed)
	cfg.Scenario = attack.Scenario{Name: "imu-dos", IMU: &attack.IMUBiaser{
		Window:    attack.Window{Start: 5, End: 11},
		Mode:      attack.IMUAccelDoS,
		Axis:      mathx.Vec3{Z: 1},
		Magnitude: 3,
		Rng:       rand.New(rand.NewSource(seed)),
	}}
	f, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// newTestServer builds a server over the shared fixture analyzer and
// registers a drained shutdown for cleanup.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(getFixture(t).analyzer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// do runs one request through the handler and returns the recorder.
// A nil t is allowed for use off the test goroutine (marshal failures
// panic instead).
func do(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	if t != nil {
		t.Helper()
	}
	var r io.Reader
	switch b := body.(type) {
	case nil:
	case io.Reader:
		r = b
	case string:
		r = strings.NewReader(b)
	default:
		raw, err := json.Marshal(b)
		if err != nil {
			panic(err)
		}
		r = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, r)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// decode unmarshals a response body, failing on unexpected status.
func decode[T any](t *testing.T, w *httptest.ResponseRecorder, wantStatus int) T {
	t.Helper()
	var v T
	if w.Code != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, wantStatus, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %T from %q: %v", v, w.Body.String(), err)
	}
	return v
}

// errCode asserts a failure response's status and machine-readable code.
func errCode(t *testing.T, w *httptest.ResponseRecorder, wantStatus int, wantCode string) {
	t.Helper()
	e := decode[api.Error](t, w, wantStatus)
	if e.Code != wantCode {
		t.Errorf("error code = %q, want %q (error %q)", e.Code, wantCode, e.Error)
	}
}

// framesFromFlight chunks a flight into roughly nBatches time-ordered
// frame requests via the api package's client-side chunker — the same
// code path `soundboost push -mode session` uses, so the equivalence
// tests exercise it too.
func framesFromFlight(f *dataset.Flight, nBatches int) ([]api.FramesRequest, error) {
	duration := float64(f.Audio.Samples()) / f.Audio.SampleRate
	if n := len(f.Telemetry); n > 0 && f.Telemetry[n-1].Time > duration {
		duration = f.Telemetry[n-1].Time
	}
	return api.ChunkFlight(f, 0.05, duration/float64(nBatches))
}

// openSession creates a streaming session for a flight and returns its
// /v1/sessions/{id} base path.
func openSession(t *testing.T, s *Server, f *dataset.Flight) string {
	t.Helper()
	created := decode[api.SessionResponse](t, do(t, s, "POST", "/v1/sessions", api.SessionRequest{
		Flight:       f.Name,
		SampleRateHz: f.Audio.SampleRate,
		Buffer:       1 << 15, // lossless: every frame must reach the engine
	}), http.StatusCreated)
	if created.State != api.SessionOpen {
		t.Fatalf("new session state = %q", created.State)
	}
	return "/v1/sessions/" + created.ID
}

// feedSession streams a flight into an open session in nBatches frame
// requests and returns the final wire report. Returns an error instead
// of failing so it is safe off the test goroutine.
func feedSession(s *Server, base string, f *dataset.Flight, nBatches int) (api.Report, error) {
	reqs, err := framesFromFlight(f, nBatches)
	if err != nil {
		return api.Report{}, err
	}
	for _, req := range reqs {
		w := do(nil, s, "POST", base+"/frames", req)
		if w.Code != http.StatusOK {
			return api.Report{}, fmt.Errorf("frames: status %d: %s", w.Code, w.Body.String())
		}
		var resp api.FramesResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			return api.Report{}, err
		}
		if resp.Shed != 0 {
			return api.Report{}, fmt.Errorf("session bus shed %d messages; verdict no longer batch-equivalent", resp.Shed)
		}
	}
	w := do(nil, s, "GET", base+"/report", nil)
	if w.Code != http.StatusOK {
		return api.Report{}, fmt.Errorf("report: status %d: %s", w.Code, w.Body.String())
	}
	var report api.Report
	if err := json.Unmarshal(w.Body.Bytes(), &report); err != nil {
		return api.Report{}, err
	}
	return report, nil
}

// runSession drives a flight through the streaming endpoints and
// returns the final wire report.
func runSession(t *testing.T, s *Server, f *dataset.Flight, nBatches int) api.Report {
	t.Helper()
	report, err := feedSession(s, openSession(t, s, f), f, nBatches)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestBatchFlightMatchesOffline uploads a recorded flight to
// POST /v1/flights and requires the wire report to equal the offline
// Analyze result field for field.
func TestBatchFlightMatchesOffline(t *testing.T) {
	fx := getFixture(t)
	s := newTestServer(t, Config{})
	for _, f := range []*dataset.Flight{fx.calib[0], gpsAttackFlight(t, 5100)} {
		var buf bytes.Buffer
		if err := f.Save(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		resp := decode[api.FlightResponse](t, do(t, s, "POST", "/v1/flights", bytes.NewReader(raw)), http.StatusOK)
		// Compare against Analyze of the round-tripped flight: .sbf stores
		// audio as float32, so the server sees (exactly) the encoded copy.
		loaded, err := dataset.Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		batch, err := fx.analyzer.Analyze(loaded)
		if err != nil {
			t.Fatal(err)
		}
		if want := api.ReportFromCore(batch); !reflect.DeepEqual(resp.Report, want) {
			t.Errorf("%s: served report:\n got %+v\nwant %+v", f.Name, resp.Report, want)
		}
	}
}

// TestSessionMatchesBatch is the service's equivalence contract: a
// flight chunked through the session endpoints must yield the same
// verdict as a batch upload of the same recording — on a benign flight
// and on an attacked one (IMU and GPS).
func TestSessionMatchesBatch(t *testing.T) {
	fx := getFixture(t)
	s := newTestServer(t, Config{})
	flights := []*dataset.Flight{fx.calib[0], imuAttackFlight(t, 5200), gpsAttackFlight(t, 5300)}
	for _, f := range flights {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			batch, err := fx.analyzer.Analyze(f)
			if err != nil {
				t.Fatal(err)
			}
			got := runSession(t, s, f, 5)
			if want := api.ReportFromCore(batch); !reflect.DeepEqual(got, want) {
				t.Errorf("session report:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestSessionPrecision opens a float32 session, verifies the served
// report records the mode it ran under (with its documented tolerance)
// and still reaches the float64 batch verdict, and checks an unknown
// precision is rejected with 422 at session open.
func TestSessionPrecision(t *testing.T) {
	fx := getFixture(t)
	s := newTestServer(t, Config{})
	f := fx.calib[0]

	errCode(t, do(t, s, "POST", "/v1/sessions", api.SessionRequest{
		SampleRateHz: f.Audio.SampleRate,
		Precision:    "float16",
	}), http.StatusUnprocessableEntity, api.CodeUnprocessable)

	created := decode[api.SessionResponse](t, do(t, s, "POST", "/v1/sessions", api.SessionRequest{
		Flight:       f.Name,
		SampleRateHz: f.Audio.SampleRate,
		Buffer:       1 << 15,
		Precision:    string(soundboost.Float32),
	}), http.StatusCreated)
	report, err := feedSession(s, "/v1/sessions/"+created.ID, f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if report.Precision != string(soundboost.Float32) {
		t.Errorf("report precision = %q, want %q", report.Precision, soundboost.Float32)
	}
	if report.Tolerance != soundboost.Float32Tolerance {
		t.Errorf("report tolerance = %g, want %g", report.Tolerance, soundboost.Float32Tolerance)
	}
	batch, err := fx.analyzer.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if report.Cause != string(batch.Cause) {
		t.Errorf("float32 session cause = %q, float64 batch cause = %q", report.Cause, batch.Cause)
	}
}

// TestConcurrentSessionsBackpressure fills the session table with live
// streams and verifies (a) an over-cap create sheds with 429 +
// Retry-After instead of blocking, (b) all capped sessions still finish
// correctly under concurrent load, and (c) a finished session is
// LRU-evicted to admit a newcomer. Run under -race this is also the
// session manager's data-race check.
func TestConcurrentSessionsBackpressure(t *testing.T) {
	const cap = 8
	fx := getFixture(t)
	s := newTestServer(t, Config{MaxSessions: cap})
	f := fx.calib[0]
	batch, err := fx.analyzer.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	want := api.ReportFromCore(batch)

	// Fill the table with live sessions first, so the cap probe is
	// deterministic: every slot is open, nothing is evictable.
	bases := make([]string, cap)
	for i := range bases {
		bases[i] = openSession(t, s, f)
	}
	w := do(t, s, "POST", "/v1/sessions", api.SessionRequest{SampleRateHz: f.Audio.SampleRate})
	errCode(t, w, http.StatusTooManyRequests, api.CodeCapacity)
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// Now stream the same flight through all cap sessions at once.
	var wg sync.WaitGroup
	reports := make([]api.Report, cap)
	errs := make([]error, cap)
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = feedSession(s, bases[i], f, 3)
		}(i)
	}
	wg.Wait()
	for i := 0; i < cap; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(reports[i], want) {
			t.Errorf("session %d report diverged:\n got %+v\nwant %+v", i, reports[i], want)
		}
	}

	// All cap sessions are now done: the next create must evict one.
	created := decode[api.SessionResponse](t, do(t, s, "POST", "/v1/sessions",
		api.SessionRequest{SampleRateHz: f.Audio.SampleRate}), http.StatusCreated)
	do(t, s, "POST", "/v1/sessions/"+created.ID+"/frames", api.FramesRequest{Close: true})
}

// TestErrorMapping walks the documented fault → HTTP status table.
func TestErrorMapping(t *testing.T) {
	fx := getFixture(t)
	s := newTestServer(t, Config{})
	rate := fx.calib[0].Audio.SampleRate

	errCode(t, do(t, s, "GET", "/v1/sessions/nope/status", nil), http.StatusNotFound, api.CodeNotFound)
	errCode(t, do(t, s, "GET", "/v1/sessions/nope/report", nil), http.StatusNotFound, api.CodeNotFound)
	errCode(t, do(t, s, "POST", "/v1/sessions/nope/frames", api.FramesRequest{}), http.StatusNotFound, api.CodeNotFound)
	errCode(t, do(t, s, "POST", "/v1/sessions", `{"sample_rate_hz": 4000, "bogus": 1}`), http.StatusBadRequest, api.CodeBadRequest)
	errCode(t, do(t, s, "POST", "/v1/sessions", api.SessionRequest{SampleRateHz: 0}), http.StatusUnprocessableEntity, api.CodeUnprocessable)
	errCode(t, do(t, s, "POST", "/v1/flights", "this is not an .sbf flight"), http.StatusUnprocessableEntity, api.CodeUnprocessable)

	created := decode[api.SessionResponse](t, do(t, s, "POST", "/v1/sessions",
		api.SessionRequest{SampleRateHz: rate}), http.StatusCreated)
	base := "/v1/sessions/" + created.ID
	// Report before close: conflict, the stream is still open.
	errCode(t, do(t, s, "GET", base+"/report", nil), http.StatusConflict, api.CodeConflict)
	decode[api.FramesResponse](t, do(t, s, "POST", base+"/frames", api.FramesRequest{Close: true}), http.StatusOK)
	// Frames after close: conflict.
	errCode(t, do(t, s, "POST", base+"/frames", api.FramesRequest{}), http.StatusConflict, api.CodeConflict)
	// Empty stream still yields a (benign) report rather than an error.
	report := decode[api.Report](t, do(t, s, "GET", base+"/report", nil), http.StatusOK)
	if report.Cause != api.CauseNone {
		t.Errorf("empty session cause = %q, want %q", report.Cause, api.CauseNone)
	}
	if st := decode[api.SessionStatus](t, do(t, s, "GET", base+"/status", nil), http.StatusOK); st.State != api.SessionDone {
		t.Errorf("post-report state = %q, want %q", st.State, api.SessionDone)
	}
}

// TestBatchPoolBackpressure holds the single batch slot open with a
// stalled upload and verifies a second upload sheds with 429 instead of
// queueing.
func TestBatchPoolBackpressure(t *testing.T) {
	s := newTestServer(t, Config{MaxJobs: 1})
	pr, pw := io.Pipe()
	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		firstDone <- do(t, s, "POST", "/v1/flights", pr)
	}()
	// Wait until the stalled request owns the slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.jobs.InUse() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first upload never acquired the batch slot")
		}
		time.Sleep(time.Millisecond)
	}
	errCode(t, do(t, s, "POST", "/v1/flights", "x"), http.StatusTooManyRequests, api.CodeCapacity)
	pw.CloseWithError(io.ErrUnexpectedEOF)
	errCode(t, <-firstDone, http.StatusUnprocessableEntity, api.CodeUnprocessable)
}

// TestIdleExpiry lets the janitor reap an abandoned session: the stream
// closes on the idle timeout and the verdict becomes readable.
func TestIdleExpiry(t *testing.T) {
	fx := getFixture(t)
	s := newTestServer(t, Config{IdleTimeout: 50 * time.Millisecond, SweepInterval: 5 * time.Millisecond})
	created := decode[api.SessionResponse](t, do(t, s, "POST", "/v1/sessions",
		api.SessionRequest{SampleRateHz: fx.calib[0].Audio.SampleRate}), http.StatusCreated)
	base := "/v1/sessions/" + created.ID
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := decode[api.SessionStatus](t, do(t, s, "GET", base+"/status", nil), http.StatusOK)
		if st.State != api.SessionOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never closed the idle session")
		}
		time.Sleep(5 * time.Millisecond)
	}
	decode[api.Report](t, do(t, s, "GET", base+"/report", nil), http.StatusOK)
}

// TestHealthzAndDrain checks liveness reporting and the graceful-drain
// behavior: in-flight sessions finish, new work is shed with 503.
func TestHealthzAndDrain(t *testing.T) {
	fx := getFixture(t)
	s, err := New(fx.analyzer, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := decode[api.Health](t, do(t, s, "GET", "/v1/healthz", nil), http.StatusOK)
	if h.Status != "ok" || h.SessionCap <= 0 || h.JobCap <= 0 {
		t.Errorf("healthz = %+v", h)
	}

	created := decode[api.SessionResponse](t, do(t, s, "POST", "/v1/sessions",
		api.SessionRequest{SampleRateHz: fx.calib[0].Audio.SampleRate}), http.StatusCreated)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	errCode(t, do(t, s, "POST", "/v1/sessions", api.SessionRequest{SampleRateHz: 4000}),
		http.StatusServiceUnavailable, api.CodeShuttingDown)
	errCode(t, do(t, s, "POST", "/v1/flights", "x"), http.StatusServiceUnavailable, api.CodeShuttingDown)
	if h := decode[api.Health](t, do(t, s, "GET", "/v1/healthz", nil), http.StatusOK); h.Status != "draining" {
		t.Errorf("post-drain healthz status = %q, want draining", h.Status)
	}
	// The drained session's verdict must still be readable.
	report := decode[api.Report](t, do(t, s, "GET", "/v1/sessions/"+created.ID+"/report", nil), http.StatusOK)
	if report.SchemaVersion != api.Version {
		t.Errorf("report schema_version = %q", report.SchemaVersion)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil analyzer accepted")
	}
}
