package server

import "testing"

// TestLabelGroup pins the flight-label → metric-group mapping: the
// prefix before the first "/" when present, "default" for empty labels,
// and separator characters flattened so registry names stay clean.
func TestLabelGroup(t *testing.T) {
	cases := []struct {
		flight string
		want   string
	}{
		{"sweep/trial-0042", "sweep"},
		{"sweep/kf=audio-only/m=1.1", "sweep"},
		{"chaos-00-control", "chaos-00-control"},
		{"hover_b01", "hover_b01"},
		{"", "default"},
		{"   ", "default"},
		{"/anonymous", "default"},
		{"weird label/x", "weird_label"},
		{"dots.and:colons", "dots_and_colons"},
	}
	for _, c := range cases {
		if got := labelGroup(c.flight); got != c.want {
			t.Errorf("labelGroup(%q) = %q, want %q", c.flight, got, c.want)
		}
	}
}
