package server

import (
	"context"
	"testing"
	"time"

	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/mavbus"
	"soundboost/internal/sim"
	"soundboost/internal/stream"
	"soundboost/internal/triage"
)

// triageTestAnalyzer clones the fixture analyzer, attaches a triage
// tier trained on the calibration flights, extra benign flights across
// the same missions, and one attack flight per family, then enforces
// the zero-flip guarantee over that corpus. The corpus is returned so
// the path-parity test replays exactly the flights the guarantee was
// verified on.
func triageTestAnalyzer(t *testing.T) (*soundboost.Analyzer, []*dataset.Flight) {
	t.Helper()
	fx := getFixture(t)
	missions := []sim.Mission{
		sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14},
		sim.NewWaypointMission("dash", mathx.Vec3{Z: -10}, []sim.Waypoint{
			{Pos: mathx.Vec3{X: 8, Z: -10}, Speed: 2, HoldSeconds: 2},
			{Pos: mathx.Vec3{Z: -10}, Speed: 2, HoldSeconds: 2},
		}),
		sim.NewWaypointMission("column", mathx.Vec3{Z: -10}, []sim.Waypoint{
			{Pos: mathx.Vec3{Z: -14}, Speed: 1.5, HoldSeconds: 2},
			{Pos: mathx.Vec3{Z: -10}, Speed: 1.5, HoldSeconds: 2},
		}),
	}
	corpus := append([]*dataset.Flight(nil), fx.calib...)
	seed := int64(8000)
	for rep := 0; rep < 2; rep++ {
		for _, m := range missions {
			f, err := dataset.Generate(testGenConfig(m, seed))
			if err != nil {
				t.Fatal(err)
			}
			corpus = append(corpus, f)
			seed += 7
		}
	}
	corpus = append(corpus, gpsAttackFlight(t, 8100), imuAttackFlight(t, 8101))

	tier, err := soundboost.TrainTriage(corpus, fx.analyzer.Model.Config().Signature, triage.Config{})
	if err != nil {
		t.Fatalf("TrainTriage: %v", err)
	}
	an := *fx.analyzer // shallow clone: the shared fixture stays triage-free
	an.Triage = tier
	if _, _, err := an.VerifyTriage(corpus); err != nil {
		t.Fatalf("VerifyTriage: %v", err)
	}
	return &an, corpus
}

// replayStream drives a flight through a live stream engine over a
// lossless bus and returns the streaming report.
func replayStream(t *testing.T, an *soundboost.Analyzer, f *dataset.Flight, disableTriage bool, extra ...stream.Option) soundboost.Report {
	t.Helper()
	bus := mavbus.NewBus(0)
	opts := append([]stream.Option{
		stream.WithBuffer(1 << 15),
		stream.WithFlightName(f.Name),
		stream.WithTriageDisabled(disableTriage),
	}, extra...)
	eng, err := stream.New(an, f.Audio.SampleRate, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Attach(bus); err != nil {
		t.Fatal(err)
	}
	replayErr := make(chan error, 1)
	go func() {
		replayErr <- stream.Replay(context.Background(), bus, f, stream.ReplayConfig{Speed: 0})
		bus.Close()
	}()
	report, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	if err := <-replayErr; err != nil {
		t.Fatalf("replay: %v", err)
	}
	if d := bus.Dropped(); d != 0 {
		t.Fatalf("bus shed %d messages", d)
	}
	return report
}

// TestTriageZeroFlipAllPaths is the corpus-wide zero verdict-flip
// guarantee across every serving surface: for each flight of the
// verified corpus, the triage-on and triage-off causes must agree on
// the batch path (Analyze), the streaming path (live engine over a
// bus, with the tier and with WithTriageDisabled), and the served path
// (HTTP sessions against triage-on and triage-off servers). Run under
// -race in CI (scripts/verify.sh), this also exercises the engine's
// escalation replay for data races.
func TestTriageZeroFlipAllPaths(t *testing.T) {
	an, corpus := triageTestAnalyzer(t)
	full := an.WithoutTriage()

	newServer := func(a *soundboost.Analyzer) *Server {
		s, err := New(a, Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		})
		return s
	}
	sOn, sOff := newServer(an), newServer(full)

	fastpath := 0
	for _, f := range corpus {
		batchOn, err := an.Analyze(f)
		if err != nil {
			t.Fatalf("triage-on Analyze %s: %v", f.Name, err)
		}
		batchOff, err := full.Analyze(f)
		if err != nil {
			t.Fatalf("triage-off Analyze %s: %v", f.Name, err)
		}
		if batchOn.Cause != batchOff.Cause {
			t.Errorf("%s: batch verdict flipped: %q vs %q", f.Name, batchOn.Cause, batchOff.Cause)
		}
		if batchOn == soundboost.FastBenignReport(f.Name, an) {
			fastpath++
		}

		streamOn := replayStream(t, an, f, false)
		streamOff := replayStream(t, an, f, true)
		if streamOn.Cause != batchOn.Cause {
			t.Errorf("%s: stream triage-on cause %q, batch %q", f.Name, streamOn.Cause, batchOn.Cause)
		}
		if streamOff.Cause != batchOff.Cause {
			t.Errorf("%s: stream triage-off cause %q, batch %q", f.Name, streamOff.Cause, batchOff.Cause)
		}

		servedOn := runSession(t, sOn, f, 6)
		servedOff := runSession(t, sOff, f, 6)
		if servedOn.Cause != string(batchOn.Cause) {
			t.Errorf("%s: served triage-on cause %q, batch %q", f.Name, servedOn.Cause, batchOn.Cause)
		}
		if servedOff.Cause != string(batchOff.Cause) {
			t.Errorf("%s: served triage-off cause %q, batch %q", f.Name, servedOff.Cause, batchOff.Cause)
		}
	}
	t.Logf("fast-path flights: %d/%d", fastpath, len(corpus))
	if fastpath == 0 {
		t.Error("no corpus flight took the fast path — the parity check is vacuous")
	}
}
