package server

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"soundboost/api"
	"soundboost/internal/chaos"
	soundboost "soundboost/internal/core"
	"soundboost/internal/faults"
	"soundboost/internal/journal"
	"soundboost/internal/mavbus"
	"soundboost/internal/stream"
)

// session is one live (or recently finished) streaming RCA run: a
// private mavbus carrying the client's telemetry into a dedicated
// engine. Lifecycle: open (accepting frames) → draining (end-of-stream
// seen, engine flushing) → done (final report held until eviction), or
// → failed if the engine dies (the failure domain is this one session —
// see DESIGN.md "Failure domains & recovery").
type session struct {
	id      string
	flight  string
	bus     *mavbus.Bus
	eng     *stream.Engine // nil for sessions recovered in a terminal state
	created time.Time
	req     api.SessionRequest

	// pub is the bus publish path, possibly wrapped by a chaos injector.
	pub chaos.PubFunc
	inj *chaos.Injector  // nil unless Config.SessionInjector supplied one
	sj  *journal.Session // nil unless journaling is enabled

	// done closes when the engine goroutine has stored its report (or the
	// session was recovered directly into a terminal state).
	done chan struct{}

	// logf receives lifecycle lines (the server's Config.Logf; never nil).
	logf func(format string, a ...any)

	// pubMu serializes frame publication so sequence-number bookkeeping
	// and the write-ahead journal see chunks in one total order.
	pubMu sync.Mutex

	mu        sync.Mutex
	state     string
	lastTouch time.Time
	lastSeq   int
	failCause string
	report    soundboost.Report
	runErr    error
}

// run consumes the session's bus until it closes, then records the
// final verdict. It is the session's only long-lived goroutine, and the
// session's panic isolation domain: a panicking engine (poison pill,
// corrupted state, a bug) marks this one session failed with its cause
// recorded — the process, and every other session, keeps running.
func (s *session) run() {
	defer func() {
		if p := recover(); p != nil {
			sessionsPanicked.Inc()
			cause := fmt.Sprintf("engine panic: %v", p)
			s.mu.Lock()
			s.state = api.SessionFailed
			s.failCause = cause
			s.runErr = fmt.Errorf("%w: %s", faults.ErrSessionFailed, cause)
			s.mu.Unlock()
			// The engine goroutine is gone; close the bus so publishers
			// get ErrBusClosed instead of filling a dead queue. Keep the
			// stack out of the HTTP response but not out of the log.
			s.bus.Close()
			close(s.done)
			s.persistMeta()
			s.logf("session %s failed: %s\n%s", s.id, cause, debug.Stack())
		}
	}()
	report, err := s.eng.Run(context.Background())
	s.mu.Lock()
	s.report = report
	s.runErr = err
	s.state = api.SessionDone
	s.mu.Unlock()
	close(s.done)
	s.persistMeta()
}

// persistMeta snapshots the session into its journal (no-op when
// journaling is off). Called on every lifecycle transition and by the
// janitor as a periodic checkpoint.
func (s *session) persistMeta() {
	if s.sj == nil {
		return
	}
	s.mu.Lock()
	meta := journal.Meta{
		ID:        s.id,
		Req:       s.req,
		State:     s.state,
		LastSeq:   s.lastSeq,
		FailCause: s.failCause,
	}
	if s.state == api.SessionDone && s.runErr == nil {
		r := api.ReportFromCore(s.report)
		meta.Report = &r
	}
	s.mu.Unlock()
	if s.eng != nil {
		meta.Engine = api.EngineStatusFromStream(s.eng.Status())
	}
	_ = s.sj.WriteMeta(meta)
}

// touch refreshes the idle clock (frame activity only — status polls do
// not keep a session alive).
func (s *session) touch(now time.Time) {
	s.mu.Lock()
	s.lastTouch = now
	s.mu.Unlock()
}

// closeStream ends the session's input stream: open → draining, bus
// closed so the engine flushes and finalizes. Idempotent; reports
// whether this call performed the transition.
func (s *session) closeStream() bool {
	s.mu.Lock()
	if s.state != api.SessionOpen {
		s.mu.Unlock()
		return false
	}
	s.state = api.SessionDraining
	s.mu.Unlock()
	if s.inj != nil {
		// Release any message the schedule held back for reordering
		// before end-of-stream reaches the engine.
		_ = s.inj.Flush(s.bus.Publish)
	}
	s.bus.Close()
	if s.sj != nil {
		s.sj.CloseChunks()
	}
	s.persistMeta()
	return true
}

// snapshot returns the session's wire status.
func (s *session) snapshot(now time.Time) api.SessionStatus {
	s.mu.Lock()
	state := s.state
	last := s.lastTouch
	lastSeq := s.lastSeq
	failCause := s.failCause
	s.mu.Unlock()
	st := api.SessionStatus{
		SchemaVersion: api.Version,
		ID:            s.id,
		Flight:        s.flight,
		State:         state,
		AgeSeconds:    now.Sub(s.created).Seconds(),
		IdleSeconds:   now.Sub(last).Seconds(),
		Shed:          s.bus.Dropped(),
		LastSeq:       lastSeq,
		FailCause:     failCause,
	}
	if s.eng != nil {
		st.Engine = api.EngineStatusFromStream(s.eng.Status())
	}
	return st
}

// publish feeds one FramesRequest into the session bus. The three
// streams are merged by timestamp — stable, audio appended before IMU
// before GPS at equal times — exactly mirroring stream.Replay's event
// ordering so a chunked upload reproduces the batch verdict.
//
// When the request carries a sequence number (Seq > 0) publication is
// idempotent: a chunk at or below the accepted high-water mark is
// acknowledged without re-publishing (duplicate=true) so a client that
// lost an ack can blindly resend, and a chunk that skips ahead is
// rejected with faults.ErrSeqGap. With journaling on, an accepted chunk
// is fsynced to the write-ahead log before it reaches the bus.
func (s *session) publish(req api.FramesRequest) (accepted int, duplicate bool, err error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if req.Seq > 0 {
		s.mu.Lock()
		last := s.lastSeq
		s.mu.Unlock()
		if req.Seq <= last {
			return 0, true, nil
		}
		if req.Seq != last+1 {
			return 0, false, fmt.Errorf("%w: got seq %d, want %d", faults.ErrSeqGap, req.Seq, last+1)
		}
	}
	if s.sj != nil {
		if err := s.sj.AppendChunk(req); err != nil {
			return 0, false, fmt.Errorf("server: journal append: %w", err)
		}
		journalChunks.Inc()
	}
	n, err := s.publishEvents(req)
	if err != nil {
		return n, false, err
	}
	if req.Seq > 0 {
		s.mu.Lock()
		s.lastSeq = req.Seq
		s.mu.Unlock()
	}
	return n, false, nil
}

// publishEvents merges and publishes one request's events (no sequence
// or journal bookkeeping — publish and recovery replay share it).
func (s *session) publishEvents(req api.FramesRequest) (int, error) {
	type event struct {
		t   float64
		msg mavbus.Message
	}
	events := make([]event, 0, len(req.Audio)+len(req.IMU)+len(req.GPS))
	for _, f := range req.Audio {
		frame := f.ToStream()
		endT := frame.Start
		if frame.Rate > 0 && len(frame.Samples) > 0 {
			endT += float64(len(frame.Samples[0])) / frame.Rate
		}
		events = append(events, event{
			t:   endT, // a frame exists once its last sample is captured
			msg: mavbus.Message{Topic: stream.TopicAudio, Time: endT, Payload: frame},
		})
	}
	for _, sample := range req.IMU {
		imu := sample.ToStream()
		events = append(events, event{
			t:   imu.Time,
			msg: mavbus.Message{Topic: stream.TopicIMU, Time: imu.Time, Payload: imu},
		})
	}
	for _, sample := range req.GPS {
		gps := sample.ToStream()
		events = append(events, event{
			t:   gps.Time,
			msg: mavbus.Message{Topic: stream.TopicGPS, Time: gps.Time, Payload: gps},
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].t < events[j].t })
	for i, ev := range events {
		if err := s.pub(ev.msg); err != nil {
			return i, err
		}
	}
	return len(events), nil
}

// stateNow returns the current lifecycle state.
func (s *session) stateNow() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// createSession builds, registers, and starts a session. It enforces the
// table bound: when full, the least-recently-touched finished session is
// evicted; if every slot holds a live session the request is shed with
// ErrCapacity (HTTP 429).
func (s *Server) createSession(req api.SessionRequest) (*session, error) {
	opts := []stream.Option{
		stream.WithFlightName(req.Flight),
		stream.WithBuffer(s.cfg.SessionBuffer),
	}
	if req.Buffer > 0 {
		opts = append(opts, stream.WithBuffer(req.Buffer))
	}
	if req.LagHorizonSeconds > 0 {
		opts = append(opts, stream.WithLagHorizon(req.LagHorizonSeconds))
	}
	if req.GapFill {
		opts = append(opts, stream.WithGapFill(true))
	}
	if req.Precision != "" {
		// Engine construction below validates the mode (422 on unknown).
		opts = append(opts, stream.WithPrecision(soundboost.Precision(req.Precision)))
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errShuttingDown
	}
	if len(s.sessions) >= s.cfg.MaxSessions && !s.evictLocked() {
		sessionsRejected.Inc()
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d live sessions (cap %d)",
			faults.ErrCapacity, len(s.sessions), s.cfg.MaxSessions)
	}
	s.nextID++
	id := fmt.Sprintf("s-%08d", s.nextID)
	s.mu.Unlock()

	// Engine construction validates the sample rate against the
	// calibrated model outside the table lock (it allocates filters).
	eng, err := stream.New(s.an, req.SampleRateHz, opts...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", faults.ErrUnprocessable, err)
	}
	bus := mavbus.NewBus(0)
	if err := eng.Attach(bus); err != nil {
		return nil, err
	}
	now := s.now()
	sess := &session{
		id:        id,
		flight:    req.Flight,
		bus:       bus,
		eng:       eng,
		created:   now,
		lastTouch: now,
		req:       req,
		pub:       bus.Publish,
		logf:      s.logf,
		state:     api.SessionOpen,
		done:      make(chan struct{}),
	}
	if s.cfg.SessionInjector != nil {
		if inj := s.cfg.SessionInjector(id, req.Flight); inj != nil {
			sess.inj = inj
			sess.pub = inj.Publisher(bus.Publish)
		}
	}
	if s.journal != nil {
		sj, err := s.journal.Session(id)
		if err != nil {
			bus.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		sess.sj = sj
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		bus.Close()
		if sess.sj != nil {
			sess.sj.Remove()
		}
		return nil, errShuttingDown
	}
	if len(s.sessions) >= s.cfg.MaxSessions && !s.evictLocked() {
		sessionsRejected.Inc()
		n := len(s.sessions)
		s.mu.Unlock()
		bus.Close()
		if sess.sj != nil {
			sess.sj.Remove()
		}
		return nil, fmt.Errorf("%w: %d live sessions (cap %d)", faults.ErrCapacity, n, s.cfg.MaxSessions)
	}
	s.sessions[id] = sess
	sessionsActive.Set(float64(len(s.sessions)))
	s.wg.Add(1)
	s.mu.Unlock()

	sessionsOpened.Inc()
	sessionsOpenedByGroup(req.Flight).Inc()
	sess.persistMeta()
	go func() {
		defer s.wg.Done()
		sess.run()
	}()
	s.logf("session %s opened (flight %q, %g Hz)", id, req.Flight, req.SampleRateHz)
	return sess, nil
}

// evictLocked removes the least-recently-touched finished session to
// make room; it reports false when every session is still live. Caller
// holds s.mu.
func (s *Server) evictLocked() bool {
	var victim *session
	for _, sess := range s.sessions {
		if st := sess.stateNow(); st != api.SessionDone && st != api.SessionFailed {
			continue
		}
		if victim == nil || sess.lastTouchLocked().Before(victim.lastTouchLocked()) {
			victim = sess
		}
	}
	if victim == nil {
		return false
	}
	delete(s.sessions, victim.id)
	if victim.sj != nil {
		victim.sj.Remove()
	}
	sessionsActive.Set(float64(len(s.sessions)))
	sessionsEvicted.Inc()
	s.logf("session %s evicted (LRU, table full)", victim.id)
	return true
}

// lastTouchLocked reads the idle clock under the session lock.
func (s *session) lastTouchLocked() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTouch
}

// lookup resolves a session id.
func (s *Server) lookup(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", faults.ErrSessionNotFound, id)
	}
	return sess, nil
}

// janitor sweeps open sessions against the idle timeout and hard
// deadline until stop closes.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
		}
		now := s.now()
		s.mu.Lock()
		open := make([]*session, 0, len(s.sessions))
		for _, sess := range s.sessions {
			open = append(open, sess)
		}
		s.mu.Unlock()
		for _, sess := range open {
			sess.mu.Lock()
			state := sess.state
			idle := now.Sub(sess.lastTouch)
			age := now.Sub(sess.created)
			sess.mu.Unlock()
			if state == api.SessionOpen {
				switch {
				case age > s.cfg.MaxSessionAge:
					if sess.closeStream() {
						sessionsDeadline.Inc()
						s.logf("session %s closed: hard deadline (%s)", sess.id, s.cfg.MaxSessionAge)
					}
				case idle > s.cfg.IdleTimeout:
					if sess.closeStream() {
						sessionsExpired.Inc()
						s.logf("session %s closed: idle for %s", sess.id, idle.Round(time.Millisecond))
					}
				}
			}
			// Periodic checkpoint: refresh the journaled engine snapshot so
			// a crash loses at most one sweep interval of progress metadata
			// (never chunks — those are write-ahead).
			if sess.sj != nil && state == api.SessionOpen {
				sess.persistMeta()
			}
		}
		s.sweepFollowers(now)
	}
}
