package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"soundboost/api"
	soundboost "soundboost/internal/core"
	"soundboost/internal/faults"
	"soundboost/internal/mavbus"
	"soundboost/internal/stream"
)

// session is one live (or recently finished) streaming RCA run: a
// private mavbus carrying the client's telemetry into a dedicated
// engine. Lifecycle: open (accepting frames) → draining (end-of-stream
// seen, engine flushing) → done (final report held until eviction). See
// DESIGN.md "Session lifecycle".
type session struct {
	id      string
	flight  string
	bus     *mavbus.Bus
	eng     *stream.Engine
	created time.Time

	// done closes when the engine goroutine has stored its report.
	done chan struct{}

	mu        sync.Mutex
	state     string
	lastTouch time.Time
	report    soundboost.Report
	runErr    error
}

// run consumes the session's bus until it closes, then records the
// final verdict. It is the session's only long-lived goroutine.
func (s *session) run() {
	report, err := s.eng.Run(context.Background())
	s.mu.Lock()
	s.report = report
	s.runErr = err
	s.state = api.SessionDone
	s.mu.Unlock()
	close(s.done)
}

// touch refreshes the idle clock (frame activity only — status polls do
// not keep a session alive).
func (s *session) touch(now time.Time) {
	s.mu.Lock()
	s.lastTouch = now
	s.mu.Unlock()
}

// closeStream ends the session's input stream: open → draining, bus
// closed so the engine flushes and finalizes. Idempotent; reports
// whether this call performed the transition.
func (s *session) closeStream() bool {
	s.mu.Lock()
	if s.state != api.SessionOpen {
		s.mu.Unlock()
		return false
	}
	s.state = api.SessionDraining
	s.mu.Unlock()
	s.bus.Close()
	return true
}

// snapshot returns the session's wire status.
func (s *session) snapshot(now time.Time) api.SessionStatus {
	s.mu.Lock()
	state := s.state
	last := s.lastTouch
	s.mu.Unlock()
	return api.SessionStatus{
		SchemaVersion: api.Version,
		ID:            s.id,
		Flight:        s.flight,
		State:         state,
		AgeSeconds:    now.Sub(s.created).Seconds(),
		IdleSeconds:   now.Sub(last).Seconds(),
		Shed:          s.bus.Dropped(),
		Engine:        api.EngineStatusFromStream(s.eng.Status()),
	}
}

// publish feeds one FramesRequest into the session bus. The three
// streams are merged by timestamp — stable, audio appended before IMU
// before GPS at equal times — exactly mirroring stream.Replay's event
// ordering so a chunked upload reproduces the batch verdict.
func (s *session) publish(req api.FramesRequest) (int, error) {
	type event struct {
		t   float64
		msg mavbus.Message
	}
	events := make([]event, 0, len(req.Audio)+len(req.IMU)+len(req.GPS))
	for _, f := range req.Audio {
		frame := f.ToStream()
		endT := frame.Start
		if frame.Rate > 0 && len(frame.Samples) > 0 {
			endT += float64(len(frame.Samples[0])) / frame.Rate
		}
		events = append(events, event{
			t:   endT, // a frame exists once its last sample is captured
			msg: mavbus.Message{Topic: stream.TopicAudio, Time: endT, Payload: frame},
		})
	}
	for _, sample := range req.IMU {
		imu := sample.ToStream()
		events = append(events, event{
			t:   imu.Time,
			msg: mavbus.Message{Topic: stream.TopicIMU, Time: imu.Time, Payload: imu},
		})
	}
	for _, sample := range req.GPS {
		gps := sample.ToStream()
		events = append(events, event{
			t:   gps.Time,
			msg: mavbus.Message{Topic: stream.TopicGPS, Time: gps.Time, Payload: gps},
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].t < events[j].t })
	for i, ev := range events {
		if err := s.bus.Publish(ev.msg); err != nil {
			return i, err
		}
	}
	return len(events), nil
}

// stateNow returns the current lifecycle state.
func (s *session) stateNow() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// createSession builds, registers, and starts a session. It enforces the
// table bound: when full, the least-recently-touched finished session is
// evicted; if every slot holds a live session the request is shed with
// ErrCapacity (HTTP 429).
func (s *Server) createSession(req api.SessionRequest) (*session, error) {
	opts := []stream.Option{
		stream.WithFlightName(req.Flight),
		stream.WithBuffer(s.cfg.SessionBuffer),
	}
	if req.Buffer > 0 {
		opts = append(opts, stream.WithBuffer(req.Buffer))
	}
	if req.LagHorizonSeconds > 0 {
		opts = append(opts, stream.WithLagHorizon(req.LagHorizonSeconds))
	}
	if req.GapFill {
		opts = append(opts, stream.WithGapFill(true))
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errShuttingDown
	}
	if len(s.sessions) >= s.cfg.MaxSessions && !s.evictLocked() {
		sessionsRejected.Inc()
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d live sessions (cap %d)",
			faults.ErrCapacity, len(s.sessions), s.cfg.MaxSessions)
	}
	s.nextID++
	id := fmt.Sprintf("s-%08d", s.nextID)
	s.mu.Unlock()

	// Engine construction validates the sample rate against the
	// calibrated model outside the table lock (it allocates filters).
	eng, err := stream.New(s.an, req.SampleRateHz, opts...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", faults.ErrUnprocessable, err)
	}
	bus := mavbus.NewBus(0)
	if err := eng.Attach(bus); err != nil {
		return nil, err
	}
	now := s.now()
	sess := &session{
		id:        id,
		flight:    req.Flight,
		bus:       bus,
		eng:       eng,
		created:   now,
		lastTouch: now,
		state:     api.SessionOpen,
		done:      make(chan struct{}),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		bus.Close()
		return nil, errShuttingDown
	}
	if len(s.sessions) >= s.cfg.MaxSessions && !s.evictLocked() {
		sessionsRejected.Inc()
		n := len(s.sessions)
		s.mu.Unlock()
		bus.Close()
		return nil, fmt.Errorf("%w: %d live sessions (cap %d)", faults.ErrCapacity, n, s.cfg.MaxSessions)
	}
	s.sessions[id] = sess
	sessionsActive.Set(float64(len(s.sessions)))
	s.wg.Add(1)
	s.mu.Unlock()

	sessionsOpened.Inc()
	go func() {
		defer s.wg.Done()
		sess.run()
	}()
	s.logf("session %s opened (flight %q, %g Hz)", id, req.Flight, req.SampleRateHz)
	return sess, nil
}

// evictLocked removes the least-recently-touched finished session to
// make room; it reports false when every session is still live. Caller
// holds s.mu.
func (s *Server) evictLocked() bool {
	var victim *session
	for _, sess := range s.sessions {
		if sess.stateNow() != api.SessionDone {
			continue
		}
		if victim == nil || sess.lastTouchLocked().Before(victim.lastTouchLocked()) {
			victim = sess
		}
	}
	if victim == nil {
		return false
	}
	delete(s.sessions, victim.id)
	sessionsActive.Set(float64(len(s.sessions)))
	sessionsEvicted.Inc()
	s.logf("session %s evicted (LRU, table full)", victim.id)
	return true
}

// lastTouchLocked reads the idle clock under the session lock.
func (s *session) lastTouchLocked() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTouch
}

// lookup resolves a session id.
func (s *Server) lookup(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", faults.ErrSessionNotFound, id)
	}
	return sess, nil
}

// janitor sweeps open sessions against the idle timeout and hard
// deadline until stop closes.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
		}
		now := s.now()
		s.mu.Lock()
		open := make([]*session, 0, len(s.sessions))
		for _, sess := range s.sessions {
			open = append(open, sess)
		}
		s.mu.Unlock()
		for _, sess := range open {
			sess.mu.Lock()
			state := sess.state
			idle := now.Sub(sess.lastTouch)
			age := now.Sub(sess.created)
			sess.mu.Unlock()
			if state != api.SessionOpen {
				continue
			}
			switch {
			case age > s.cfg.MaxSessionAge:
				if sess.closeStream() {
					sessionsDeadline.Inc()
					s.logf("session %s closed: hard deadline (%s)", sess.id, s.cfg.MaxSessionAge)
				}
			case idle > s.cfg.IdleTimeout:
				if sess.closeStream() {
					sessionsExpired.Inc()
					s.logf("session %s closed: idle for %s", sess.id, idle.Round(time.Millisecond))
				}
			}
		}
	}
}
