package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"soundboost/api"
	"soundboost/internal/chaos"
	"soundboost/internal/dataset"
)

// waitSessionState polls a session's status until it reaches want.
func waitSessionState(t *testing.T, s *Server, base, want string) api.SessionStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := decode[api.SessionStatus](t, do(t, s, "GET", base+"/status", nil), http.StatusOK)
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in state %q, want %q", st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionPanicIsolation poisons one session's message stream and
// requires that session — and only that session — to fail: the panic is
// contained, its cause recorded and served, and a concurrently fed
// session's verdict stays identical to a clean run.
func TestSessionPanicIsolation(t *testing.T) {
	fx := getFixture(t)
	flight := fx.calib[0]
	const poisonFlight = "poisoned-run"
	s := newTestServer(t, Config{
		SessionInjector: func(id, flight string) *chaos.Injector {
			if flight != poisonFlight {
				return nil
			}
			return chaos.NewInjector(chaos.Config{PoisonAfter: 50}, nil)
		},
	})
	clean := runSession(t, s, flight, 4)

	// Interleave: open the healthy session, detonate the poisoned one,
	// then finish the healthy one.
	reqs, err := framesFromFlight(flight, 4)
	if err != nil {
		t.Fatal(err)
	}
	healthy := openSession(t, s, flight)
	for _, req := range reqs[:2] {
		decode[api.FramesResponse](t, do(t, s, "POST", healthy+"/frames", req), http.StatusOK)
	}

	poisoned := decode[api.SessionResponse](t, do(t, s, "POST", "/v1/sessions", api.SessionRequest{
		Flight:       poisonFlight,
		SampleRateHz: flight.Audio.SampleRate,
		Buffer:       1 << 15,
	}), http.StatusCreated)
	pBase := "/v1/sessions/" + poisoned.ID
	for _, req := range reqs {
		// Posts racing the panic may fail once the bus dies; that is the
		// expected way for the client to learn.
		if w := do(t, s, "POST", pBase+"/frames", req); w.Code != http.StatusOK {
			break
		}
	}
	st := waitSessionState(t, s, pBase, api.SessionFailed)
	if st.FailCause == "" {
		t.Error("failed session has no recorded cause")
	}
	// Further frames are refused with the permanent failure code.
	errCode(t, do(t, s, "POST", pBase+"/frames", reqs[0]), http.StatusInternalServerError, api.CodeSessionFailed)
	// The report endpoint must not pretend there is a verdict.
	if w := do(t, s, "GET", pBase+"/report", nil); w.Code == http.StatusOK {
		t.Errorf("failed session served a report: %s", w.Body.String())
	}

	report, err := feedSession(s, healthy, flight, 4)
	if err != nil {
		t.Fatalf("healthy session disturbed by sibling panic: %v", err)
	}
	// feedSession re-sends the full chunk sequence; the first two were
	// already accepted, so their resends must come back as duplicates —
	// and the verdict must be untouched by the sibling's death.
	if !reflect.DeepEqual(report, clean) {
		t.Errorf("healthy session verdict diverged after sibling panic:\nclean: %+v\ngot:   %+v", clean, report)
	}
}

// TestFramesSeqIdempotency pins the sequence-number contract: duplicate
// chunks are acknowledged without re-publication, gaps are rejected with
// a 409, and the in-order chunk is then accepted.
func TestFramesSeqIdempotency(t *testing.T) {
	fx := getFixture(t)
	flight := fx.calib[0]
	s := newTestServer(t, Config{})
	clean := runSession(t, s, flight, 4)

	reqs, err := framesFromFlight(flight, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 3 {
		t.Fatalf("want >= 3 chunks, got %d", len(reqs))
	}
	for i, r := range reqs {
		if r.Seq != i+1 {
			t.Fatalf("ChunkFlight seq[%d] = %d, want %d", i, r.Seq, i+1)
		}
	}
	base := openSession(t, s, flight)
	first := decode[api.FramesResponse](t, do(t, s, "POST", base+"/frames", reqs[0]), http.StatusOK)
	if first.Duplicate || first.Accepted == 0 {
		t.Fatalf("first chunk: accepted %d duplicate %v", first.Accepted, first.Duplicate)
	}
	// Resend: the lost-ack case. Must ack as duplicate, publish nothing.
	resent := decode[api.FramesResponse](t, do(t, s, "POST", base+"/frames", reqs[0]), http.StatusOK)
	if !resent.Duplicate || resent.Accepted != 0 {
		t.Fatalf("resent chunk: accepted %d duplicate %v, want 0/true", resent.Accepted, resent.Duplicate)
	}
	// Gap: skipping a chunk must be refused, not silently published.
	errCode(t, do(t, s, "POST", base+"/frames", reqs[2]), http.StatusConflict, api.CodeConflict)
	// The in-order successor is still welcome.
	for _, r := range reqs[1:] {
		decode[api.FramesResponse](t, do(t, s, "POST", base+"/frames", r), http.StatusOK)
	}
	w := do(t, s, "GET", base+"/report", nil)
	report := decode[api.Report](t, w, http.StatusOK)
	if !reflect.DeepEqual(report, clean) {
		t.Errorf("verdict after duplicate+gap traffic diverged:\nclean: %+v\ngot:   %+v", clean, report)
	}
	st := decode[api.SessionStatus](t, do(t, s, "GET", base+"/status", nil), http.StatusOK)
	if st.LastSeq != len(reqs) {
		t.Errorf("last_seq = %d, want %d", st.LastSeq, len(reqs))
	}
}

// TestBatchTimeout bounds the batch path: a deadline that expires mid-
// analysis turns into a 503 with the timeout code, and the limiter slot
// comes back once the abandoned work returns — a wedged analysis cannot
// hold a slot forever.
func TestBatchTimeout(t *testing.T) {
	fx := getFixture(t)
	s := newTestServer(t, Config{MaxJobs: 1, BatchTimeout: time.Nanosecond})
	raw := encodeFlight(t, fx.calib[0])
	errCode(t, do(t, s, "POST", "/v1/flights", string(raw)), http.StatusServiceUnavailable, api.CodeTimeout)
	// The slot is released when the abandoned analysis finishes, not
	// leaked with it.
	deadline := time.Now().Add(30 * time.Second)
	for s.jobs.InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("limiter slot still held %d after timeout", s.jobs.InUse())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func encodeFlight(t *testing.T, f *dataset.Flight) []byte {
	t.Helper()
	var buf []byte
	w := &sliceWriter{buf: &buf}
	if err := f.Save(w); err != nil {
		t.Fatal(err)
	}
	return buf
}

type sliceWriter struct{ buf *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

// copyDir snapshots a journal directory the way kill -9 would leave it:
// byte-for-byte, no cooperation from the running server.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue // the followers/ subdir is not part of a session's own journal
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestJournalCrashRecoveryMidSession kills a server (by snapshotting its
// journal mid-upload and starting a fresh server over the snapshot) and
// requires the recovered session to hold every acknowledged chunk: the
// client resends its in-flight chunk, streams the rest, and gets the
// exact clean verdict.
func TestJournalCrashRecoveryMidSession(t *testing.T) {
	fx := getFixture(t)
	flight := fx.calib[0]
	liveDir := t.TempDir()
	a := newTestServer(t, Config{JournalDir: liveDir})
	clean := runSession(t, a, flight, 6)

	reqs, err := framesFromFlight(flight, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 4 {
		t.Fatalf("want >= 4 chunks, got %d", len(reqs))
	}
	base := openSession(t, a, flight)
	cut := len(reqs) / 2
	for _, r := range reqs[:cut] {
		decode[api.FramesResponse](t, do(t, a, "POST", base+"/frames", r), http.StatusOK)
	}

	// "Crash": freeze the journal as-is while the session is mid-upload.
	crashDir := copyDir(t, liveDir)
	// A torn trailing line — the crash landed mid-append. Recovery must
	// treat it as end-of-log, not refuse the session.
	var chunksFile string
	for _, m := range mustGlob(t, crashDir, "*.chunks.jsonl") {
		chunksFile = m
	}
	torn, err := os.OpenFile(chunksFile, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(torn, `{"seq":99,"audio":[{"start":`)
	torn.Close()
	// Unreadable sibling meta: logged and skipped, never fatal.
	if err := os.WriteFile(filepath.Join(crashDir, "s-garbage.meta.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, Config{JournalDir: crashDir})
	st := waitSessionState(t, b, base, api.SessionOpen)
	if st.LastSeq != cut {
		t.Fatalf("recovered last_seq = %d, want %d (no acknowledged chunk may be lost)", st.LastSeq, cut)
	}
	// The client's resend of its last unacknowledged chunk rides the seq
	// contract: chunk cut was never acked, so it is accepted; a resend of
	// chunk cut-1 would be a duplicate.
	dup := decode[api.FramesResponse](t, do(t, b, "POST", base+"/frames", reqs[cut-1]), http.StatusOK)
	if !dup.Duplicate {
		t.Fatal("resend of an acknowledged chunk after recovery was not deduplicated")
	}
	for _, r := range reqs[cut:] {
		decode[api.FramesResponse](t, do(t, b, "POST", base+"/frames", r), http.StatusOK)
	}
	report := decode[api.Report](t, do(t, b, "GET", base+"/report", nil), http.StatusOK)
	if !reflect.DeepEqual(report, clean) {
		t.Errorf("recovered session verdict diverged from clean:\nclean: %+v\ngot:   %+v", clean, report)
	}

	// The id allocator must have advanced past the recovered session.
	fresh := decode[api.SessionResponse](t, do(t, b, "POST", "/v1/sessions", api.SessionRequest{
		Flight: flight.Name, SampleRateHz: flight.Audio.SampleRate,
	}), http.StatusCreated)
	if fresh.ID == st.ID {
		t.Fatalf("new session reused recovered id %q", fresh.ID)
	}
}

// TestJournalRecoversTerminalStates restarts over a journal holding a
// finished session and requires its report to be served without
// rebuilding an engine — and a new server to refuse frames for it.
func TestJournalRecoversTerminalStates(t *testing.T) {
	fx := getFixture(t)
	flight := fx.calib[0]
	liveDir := t.TempDir()
	a := newTestServer(t, Config{JournalDir: liveDir})
	reqs, err := framesFromFlight(flight, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := openSession(t, a, flight)
	clean, err := feedSession(a, base, flight, 3)
	if err != nil {
		t.Fatal(err)
	}
	waitSessionState(t, a, base, api.SessionDone)

	b := newTestServer(t, Config{JournalDir: copyDir(t, liveDir)})
	st := waitSessionState(t, b, base, api.SessionDone)
	if st.State != api.SessionDone {
		t.Fatalf("recovered state %q", st.State)
	}
	report := decode[api.Report](t, do(t, b, "GET", base+"/report", nil), http.StatusOK)
	if !reflect.DeepEqual(report, clean) {
		t.Errorf("recovered report diverged:\nwant: %+v\ngot:  %+v", clean, report)
	}
	errCode(t, do(t, b, "POST", base+"/frames", reqs[0]), http.StatusConflict, api.CodeConflict)
}

// TestJournalCorruptRecoveredAsFailed is the regression test for the
// silent-vanish hole: a session whose meta parses but whose chunk log is
// damaged BEFORE the tolerated torn tail must come back as a failed
// session with the corruption recorded as its cause — not disappear, and
// not serve a verdict replayed from a silently truncated log.
func TestJournalCorruptRecoveredAsFailed(t *testing.T) {
	fx := getFixture(t)
	flight := fx.calib[0]
	liveDir := t.TempDir()
	a := newTestServer(t, Config{JournalDir: liveDir})
	reqs, err := framesFromFlight(flight, 6)
	if err != nil {
		t.Fatal(err)
	}
	base := openSession(t, a, flight)
	for _, r := range reqs[:len(reqs)/2] {
		decode[api.FramesResponse](t, do(t, a, "POST", base+"/frames", r), http.StatusOK)
	}

	// "Crash", then damage the log in its interior: truncate the second
	// chunk line halfway. Acknowledged chunks are now unreadable.
	crashDir := copyDir(t, liveDir)
	var chunksFile string
	for _, m := range mustGlob(t, crashDir, "*.chunks.jsonl") {
		chunksFile = m
	}
	raw, err := os.ReadFile(chunksFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("fixture journal has %d chunk lines, want >= 3", len(lines))
	}
	lines[1] = lines[1][:len(lines[1])/2]
	if err := os.WriteFile(chunksFile, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, Config{JournalDir: crashDir})
	st := waitSessionState(t, b, base, api.SessionFailed)
	if st.FailCause == "" {
		t.Fatal("corrupt-journal session recovered without a recorded cause")
	}
	if !strings.Contains(st.FailCause, "journal unreadable") || !strings.Contains(st.FailCause, "line 2") {
		t.Errorf("fail cause %q does not name the journal corruption", st.FailCause)
	}
	// The failure is permanent and visible on every surface: frames are
	// refused with the failed code, and the report endpoint must not
	// fabricate a verdict.
	errCode(t, do(t, b, "POST", base+"/frames", reqs[0]), http.StatusInternalServerError, api.CodeSessionFailed)
	if w := do(t, b, "GET", base+"/report", nil); w.Code == http.StatusOK {
		t.Errorf("corrupt-journal session served a report: %s", w.Body.String())
	}
	// And it survives another restart: the failure cause was re-journaled.
	c := newTestServer(t, Config{JournalDir: copyDir(t, crashDir)})
	st = waitSessionState(t, c, base, api.SessionFailed)
	if !strings.Contains(st.FailCause, "journal unreadable") {
		t.Errorf("fail cause lost across second restart: %q", st.FailCause)
	}
}

// TestJournalExportEndpoint pins the fleet handoff source: the export
// carries the original request plus exactly the acknowledged chunk
// prefix, and replaying it into a second server reproduces the verdict
// byte-identically.
func TestJournalExportEndpoint(t *testing.T) {
	fx := getFixture(t)
	flight := fx.calib[0]
	a := newTestServer(t, Config{JournalDir: t.TempDir()})
	clean := runSession(t, a, flight, 6)

	reqs, err := framesFromFlight(flight, 6)
	if err != nil {
		t.Fatal(err)
	}
	base := openSession(t, a, flight)
	cut := len(reqs) / 2
	for _, r := range reqs[:cut] {
		decode[api.FramesResponse](t, do(t, a, "POST", base+"/frames", r), http.StatusOK)
	}

	exp := decode[api.SessionJournal](t, do(t, a, "GET", base+"/journal", nil), http.StatusOK)
	if exp.SchemaVersion != api.Version {
		t.Errorf("schema_version = %q", exp.SchemaVersion)
	}
	if exp.State != api.SessionOpen || exp.LastSeq != cut || len(exp.Chunks) != cut {
		t.Fatalf("export state %q last_seq %d chunks %d, want open/%d/%d",
			exp.State, exp.LastSeq, len(exp.Chunks), cut, cut)
	}
	if exp.Request.SampleRateHz != flight.Audio.SampleRate {
		t.Errorf("exported request lost sample rate: %+v", exp.Request)
	}
	for i, c := range exp.Chunks {
		if c.Seq != i+1 {
			t.Fatalf("exported chunk %d has seq %d", i, c.Seq)
		}
	}

	// Handoff: replay the export into a fresh server — the successor
	// replica — then finish the upload there. Verdict must be identical.
	b := newTestServer(t, Config{JournalDir: t.TempDir()})
	succ := decode[api.SessionResponse](t, do(t, b, "POST", "/v1/sessions", exp.Request), http.StatusCreated)
	succBase := "/v1/sessions/" + succ.ID
	for _, c := range exp.Chunks {
		decode[api.FramesResponse](t, do(t, b, "POST", succBase+"/frames", c), http.StatusOK)
	}
	for _, r := range reqs[cut:] {
		decode[api.FramesResponse](t, do(t, b, "POST", succBase+"/frames", r), http.StatusOK)
	}
	report := decode[api.Report](t, do(t, b, "GET", succBase+"/report", nil), http.StatusOK)
	if !reflect.DeepEqual(report, clean) {
		t.Errorf("replayed export verdict diverged:\nclean: %+v\ngot:   %+v", clean, report)
	}

	// A server without journaling has nothing durable to export.
	c := newTestServer(t, Config{})
	njBase := openSession(t, c, flight)
	errCode(t, do(t, c, "GET", njBase+"/journal", nil), http.StatusConflict, api.CodeConflict)
}

func mustGlob(t *testing.T, dir, pattern string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil || len(matches) == 0 {
		t.Fatalf("glob %s in %s: %v (%d matches)", pattern, dir, err, len(matches))
	}
	return matches
}
