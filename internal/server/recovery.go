package server

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"soundboost/api"
	soundboost "soundboost/internal/core"
	"soundboost/internal/faults"
	"soundboost/internal/journal"
	"soundboost/internal/mavbus"
	"soundboost/internal/stream"
)

// Crash recovery: with Config.JournalDir set, a restarted server rebuilds
// its session table from the journal before accepting traffic. Recovery
// (journal.Store.Load + Server.recoverSessions) replays each journaled
// session's chunk log through the normal publish path into a fresh
// engine, which is deterministic, so a recovered session's verdict is
// the verdict the original would have produced. Finished sessions skip
// the replay: their report is served straight from meta. A session whose
// chunk log is damaged before its torn tail (acknowledged chunks
// unreadable) is recovered as FAILED with the corruption recorded as its
// cause — silently replaying a truncated log would serve a verdict the
// client's acknowledged stream never produced.

// sessionID extracts the numeric suffix of a session id ("s-00000042" →
// 42, ok) so recovery can advance the id allocator past every journaled
// session.
func sessionID(id string) (int, bool) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "s-"))
	return n, err == nil && n > 0
}

// recoverSessions rebuilds the session table from the journal at
// startup. Sessions that finished before the crash are restored straight
// into their terminal state (report or failure cause served from meta);
// interrupted sessions get a fresh engine and their chunk log replayed
// through the normal publish path — deterministic, so the recovered
// verdict is the one the original run would have produced. Open sessions
// stay open: the client polls status, reads last_seq, and resumes from
// the next chunk.
func (s *Server) recoverSessions() {
	recs, errs := s.journal.Load()
	for _, err := range errs {
		// An empty journal is the debris of a crash inside session
		// creation — nothing was acknowledged, so it is a clean new
		// session, not a corrupt one: reclaim the files instead of
		// carrying a ghost forward.
		var empty *journal.EmptyJournalError
		if errors.As(err, &empty) {
			s.journal.RemoveSession(empty.ID)
			sessionsEmptyCleaned.Inc()
			s.logf("journal: session %s never started (empty journal), cleaned up", empty.ID)
			continue
		}
		s.logf("journal: %v", err)
	}
	for _, rec := range recs {
		if n, ok := sessionID(rec.Meta.ID); ok && n > s.nextID {
			s.nextID = n
		}
		if err := s.recoverSession(rec); err != nil {
			s.logf("journal: session %s not recovered: %v", rec.Meta.ID, err)
			continue
		}
		sessionsRecovered.Inc()
	}
}

// recoverTerminal registers a session directly in a terminal state with
// no engine — the journal already holds the outcome (or, for corrupt
// logs, the reason there cannot be one).
func (s *Server) recoverTerminal(meta journal.Meta) error {
	now := s.now()
	bus := mavbus.NewBus(1)
	bus.Close()
	sess := &session{
		id: meta.ID, flight: meta.Req.Flight, bus: bus,
		created: now, lastTouch: now, req: meta.Req,
		pub: bus.Publish, logf: s.logf,
		state: meta.State, lastSeq: meta.LastSeq,
		failCause: meta.FailCause,
		done:      make(chan struct{}),
	}
	if meta.State == api.SessionFailed {
		sess.runErr = fmt.Errorf("%w: %s", faults.ErrSessionFailed, meta.FailCause)
	} else {
		sess.report = meta.Report.ToCore()
	}
	close(sess.done)
	sj, err := s.journal.Session(meta.ID)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	sj.CloseChunks()
	sess.sj = sj
	sess.persistMeta()
	s.mu.Lock()
	s.sessions[meta.ID] = sess
	sessionsActive.Set(float64(len(s.sessions)))
	s.mu.Unlock()
	s.logf("session %s recovered (%s)", meta.ID, meta.State)
	return nil
}

// recoverSession rebuilds one journaled session.
func (s *Server) recoverSession(rec journal.Recovered) error {
	meta := rec.Meta
	now := s.now()

	// Terminal states need no engine: the journal already holds the
	// outcome.
	if meta.State == api.SessionDone || meta.State == api.SessionFailed {
		if meta.State == api.SessionDone && meta.Report == nil {
			// Finished but the report never hit the meta (crash inside the
			// transition). Fall through and recompute it by replay.
			meta.State = api.SessionDraining
		} else {
			return s.recoverTerminal(meta)
		}
	}

	// A chunk log damaged before its torn tail means acknowledged chunks
	// are unreadable: a replay cannot reproduce the stream the client
	// believes was accepted. Surface the session as failed with the
	// corruption as its recorded cause — it must not vanish, and it must
	// not serve a verdict computed from a silently truncated log.
	if rec.Corrupt != "" {
		sessionsCorrupt.Inc()
		meta.State = api.SessionFailed
		meta.FailCause = "journal unreadable: " + rec.Corrupt
		meta.Report = nil
		s.logf("session %s journal corrupt: %s", meta.ID, rec.Corrupt)
		return s.recoverTerminal(meta)
	}

	// Interrupted session: rebuild the engine and replay the chunk log.
	// The buffer floor absorbs the replay burst — recovery publishes the
	// whole log as fast as the bus accepts, and a shed message here would
	// silently change the verdict.
	opts := []stream.Option{
		stream.WithFlightName(meta.Req.Flight),
		stream.WithBuffer(maxInt(meta.Req.Buffer, maxInt(s.cfg.SessionBuffer, recoveryBufferFloor))),
	}
	if meta.Req.LagHorizonSeconds > 0 {
		opts = append(opts, stream.WithLagHorizon(meta.Req.LagHorizonSeconds))
	}
	if meta.Req.GapFill {
		opts = append(opts, stream.WithGapFill(true))
	}
	if meta.Req.Precision != "" {
		opts = append(opts, stream.WithPrecision(soundboost.Precision(meta.Req.Precision)))
	}
	eng, err := stream.New(s.an, meta.Req.SampleRateHz, opts...)
	if err != nil {
		return err
	}
	bus := mavbus.NewBus(0)
	if err := eng.Attach(bus); err != nil {
		return err
	}
	sess := &session{
		id: meta.ID, flight: meta.Req.Flight, bus: bus, eng: eng,
		created: now, lastTouch: now, req: meta.Req,
		pub: bus.Publish, logf: s.logf,
		state: api.SessionOpen,
		done:  make(chan struct{}),
	}
	s.mu.Lock()
	s.sessions[meta.ID] = sess
	sessionsActive.Set(float64(len(s.sessions)))
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		sess.run()
	}()

	// Replay with journaling detached: these chunks are already on disk.
	closeSeen := false
	for _, req := range rec.Chunks {
		if _, _, err := sess.publish(req); err != nil {
			s.logf("session %s replay: %v", meta.ID, err)
			break
		}
		if req.Close {
			closeSeen = true
		}
	}

	// Reattach the journal (append mode) so the resumed session keeps
	// logging new chunks.
	sj, err := s.journal.Session(meta.ID)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	sess.sj = sj
	if closeSeen || meta.State != api.SessionOpen {
		sess.closeStream()
	} else {
		sess.persistMeta()
	}
	s.logf("session %s recovered (%d chunk(s) replayed, last_seq %d)",
		meta.ID, len(rec.Chunks), sess.snapshot(now).LastSeq)
	return nil
}

// recoveryBufferFloor is the minimum per-topic bus depth used while
// replaying a journaled chunk log at startup.
const recoveryBufferFloor = 1 << 16

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
