package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"soundboost/api"
)

// The session journal is the server's crash-safety layer: with
// Config.JournalDir set, every session writes enough durable state that a
// killed-and-restarted `soundboost serve` can rebuild its session table
// without losing a single accepted chunk. Two files per session:
//
//   - <id>.meta.json — the session's identity and lifecycle: the original
//     SessionRequest, current state, highest accepted sequence number,
//     failure cause, and (once finished) the final report. Rewritten
//     atomically (temp file + rename) on every transition and refreshed
//     with an engine-status checkpoint by the janitor, so the file is
//     always a complete, parseable snapshot.
//   - <id>.chunks.jsonl — the write-ahead chunk log: each accepted
//     FramesRequest appended as one JSON line and fsynced BEFORE the
//     chunk is published to the session bus (and so before the client
//     sees its 200). A torn trailing line — the crash arriving mid-write
//     — is treated as end-of-log: the chunk was never acknowledged, so
//     the client will resend it.
//
// Recovery (journal.load + Server.recoverSessions) replays each
// journaled session's chunk log through the normal publish path into a
// fresh engine, which is deterministic, so a recovered session's verdict
// is the verdict the original would have produced. Finished sessions
// skip the replay: their report is served straight from meta.
type journal struct {
	dir string
}

// journalMeta is the durable per-session snapshot.
type journalMeta struct {
	ID        string             `json:"id"`
	Req       api.SessionRequest `json:"request"`
	State     string             `json:"state"`
	LastSeq   int                `json:"last_seq"`
	FailCause string             `json:"fail_cause,omitempty"`
	// Report holds the final verdict once the session is done — the one
	// piece of state cheaper to persist than to recompute.
	Report *api.Report `json:"report,omitempty"`
	// Engine is the janitor's periodic progress checkpoint. Informational
	// (recovery replays the chunk log rather than trusting it): it lets an
	// operator see how far a crashed session had gotten.
	Engine api.EngineStatus `json:"engine"`
}

// recovered is one journaled session as read back at startup.
type recovered struct {
	meta   journalMeta
	chunks []api.FramesRequest
}

func newJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: journal dir: %w", err)
	}
	return &journal{dir: dir}, nil
}

// open creates (or reopens for append) a session's journal files.
func (j *journal) open(id string) (*sessionJournal, error) {
	f, err := os.OpenFile(j.chunksPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: journal chunks: %w", err)
	}
	return &sessionJournal{j: j, id: id, chunks: f}, nil
}

func (j *journal) metaPath(id string) string   { return filepath.Join(j.dir, id+".meta.json") }
func (j *journal) chunksPath(id string) string { return filepath.Join(j.dir, id+".chunks.jsonl") }

// load reads every journaled session, in id order. A session whose meta
// is unreadable is skipped (reported in errs) rather than blocking the
// rest of the recovery; a torn trailing chunk line is silently treated
// as end-of-log.
func (j *journal) load() (sessions []recovered, errs []error) {
	metas, err := filepath.Glob(filepath.Join(j.dir, "*.meta.json"))
	if err != nil {
		return nil, []error{err}
	}
	sort.Strings(metas)
	for _, path := range metas {
		raw, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("journal %s: %w", filepath.Base(path), err))
			continue
		}
		var meta journalMeta
		if err := json.Unmarshal(raw, &meta); err != nil {
			errs = append(errs, fmt.Errorf("journal %s: %w", filepath.Base(path), err))
			continue
		}
		if meta.ID == "" {
			errs = append(errs, fmt.Errorf("journal %s: missing session id", filepath.Base(path)))
			continue
		}
		rec := recovered{meta: meta}
		if chunks, err := os.ReadFile(j.chunksPath(meta.ID)); err == nil {
			for _, line := range bytes.Split(chunks, []byte{'\n'}) {
				if len(bytes.TrimSpace(line)) == 0 {
					continue
				}
				var req api.FramesRequest
				if err := json.Unmarshal(line, &req); err != nil {
					// Torn tail from a crash mid-append: the chunk was never
					// acknowledged, so dropping it loses nothing the client
					// believes was accepted.
					break
				}
				rec.chunks = append(rec.chunks, req)
			}
		}
		sessions = append(sessions, rec)
	}
	return sessions, errs
}

// sessionID extracts the numeric suffix of a session id ("s-00000042" →
// 42, ok) so recovery can advance the id allocator past every journaled
// session.
func sessionID(id string) (int, bool) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "s-"))
	return n, err == nil && n > 0
}

// sessionJournal is one session's handle on the journal. Meta writes and
// chunk appends are serialized by mu; the chunk file stays open for the
// session's accepting lifetime.
type sessionJournal struct {
	j  *journal
	id string

	mu     sync.Mutex
	chunks *os.File
}

// writeMeta atomically replaces the session's meta snapshot.
func (sj *sessionJournal) writeMeta(m journalMeta) error {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.writeMetaLocked(m)
}

func (sj *sessionJournal) writeMetaLocked(m journalMeta) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := sj.j.metaPath(sj.id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself survives power loss.
	if d, err := os.Open(sj.j.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// appendChunk durably logs one accepted FramesRequest. It must return
// before the chunk is published or acknowledged — the write-ahead
// ordering is what makes "accepted" mean "survives a crash".
func (sj *sessionJournal) appendChunk(req api.FramesRequest) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return err
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.chunks == nil {
		return fmt.Errorf("server: journal chunk log closed")
	}
	if _, err := sj.chunks.Write(append(raw, '\n')); err != nil {
		return err
	}
	return sj.chunks.Sync()
}

// closeChunks releases the chunk-log handle once the session stops
// accepting frames (the file itself stays for recovery until remove).
func (sj *sessionJournal) closeChunks() {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.chunks != nil {
		sj.chunks.Close()
		sj.chunks = nil
	}
}

// remove deletes the session's journal files (eviction: the session is
// gone from the table, so recovering it would resurrect a ghost).
func (sj *sessionJournal) remove() {
	sj.closeChunks()
	_ = os.Remove(sj.j.metaPath(sj.id))
	_ = os.Remove(sj.j.chunksPath(sj.id))
}
