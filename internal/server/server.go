// Package server is SoundBoost's multi-session RCA service: one shared
// calibrated Analyzer serving many concurrent flights over HTTP. Batch
// uploads (POST /v1/flights) run the offline pipeline under a bounded
// admission pool; streaming sessions (POST /v1/sessions + frames) feed a
// per-session mavbus into a per-session stream.Engine, so a streamed
// flight yields the same verdict as a batch upload of the same
// recording. All request/response bodies are the schema-versioned DTOs
// of the top-level api package; internal structs never cross the wire.
//
// Resource bounds and backpressure: the session table is capped
// (finished sessions are LRU-evicted to make room; when every slot is
// live, creation sheds with 429 + Retry-After), the batch pool is a
// parallel.Limiter (full → 429), per-session idle timeouts and hard
// deadlines reclaim abandoned streams, and Shutdown drains gracefully:
// no new work, open streams closed, verdicts flushed.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"soundboost/api"
	"soundboost/internal/chaos"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/faults"
	"soundboost/internal/parallel"
)

// errShuttingDown sheds requests arriving during a graceful drain
// (HTTP 503). Unexported: it is a lifecycle condition of this server,
// not part of the shared fault vocabulary.
var errShuttingDown = errors.New("server: shutting down")

// Config tunes the service. The zero value selects the defaults noted
// on each field.
type Config struct {
	// MaxSessions bounds the session table, finished sessions included
	// (default 64).
	MaxSessions int
	// MaxJobs bounds concurrent batch flight analyses (default 4).
	MaxJobs int
	// IdleTimeout closes an open session that has received no frames
	// for this long (default 60s).
	IdleTimeout time.Duration
	// MaxSessionAge is the hard deadline: an open session older than
	// this is closed regardless of activity (default 15m).
	MaxSessionAge time.Duration
	// SessionBuffer is the default per-topic subscription depth for
	// session engines (default 8192); SessionRequest.Buffer overrides
	// per session.
	SessionBuffer int
	// MaxBodyBytes caps request bodies (default 256 MiB — a flight
	// upload carries raw audio).
	MaxBodyBytes int64
	// SweepInterval is the janitor tick (default 1s).
	SweepInterval time.Duration
	// RetryAfterSeconds is advertised on 429 responses (default 1).
	RetryAfterSeconds int
	// BatchTimeout bounds one batch flight analysis (default 2m). A
	// request whose analysis outlives it (or whose client disconnects)
	// gets 503/timeout; the worker slot frees when the abandoned analysis
	// actually returns.
	BatchTimeout time.Duration
	// JournalDir, when set, enables crash-safe session recovery: accepted
	// chunks are fsynced to a write-ahead log before they are
	// acknowledged, lifecycle transitions are checkpointed, and a
	// restarted server rebuilds its session table from the directory. See
	// DESIGN.md "Failure domains & recovery".
	JournalDir string
	// SessionInjector, when set, supplies a chaos fault schedule for each
	// new session: the returned injector (nil = no faults) wraps the
	// session's bus publish path. Used by the `soundboost chaos` soak to
	// inject message-plane faults server-side; never set in production.
	SessionInjector func(id, flight string) *chaos.Injector
	// Logf, when set, receives one line per lifecycle event (session
	// opened/closed/evicted/failed/recovered, drain).
	Logf func(format string, a ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.MaxSessionAge <= 0 {
		c.MaxSessionAge = 15 * time.Minute
	}
	if c.SessionBuffer <= 0 {
		c.SessionBuffer = 8192
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = time.Second
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 2 * time.Minute
	}
	return c
}

// Server hosts the RCA service over one shared calibrated analyzer.
type Server struct {
	an      *soundboost.Analyzer
	cfg     Config
	jobs    *parallel.Limiter
	mux     *http.ServeMux
	now     func() time.Time
	journal *journal // nil unless Config.JournalDir is set

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	draining bool

	wg          sync.WaitGroup
	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds a server around a calibrated analyzer and starts its
// janitor. Callers must Shutdown (or Close) to stop it.
func New(an *soundboost.Analyzer, cfg Config) (*Server, error) {
	if an == nil || an.Model == nil || an.IMU == nil || an.GPSAudioOnly == nil || an.GPSAudioIMU == nil {
		return nil, fmt.Errorf("server: nil or incomplete analyzer")
	}
	s := &Server{
		an:          an,
		cfg:         cfg.withDefaults(),
		now:         time.Now,
		sessions:    make(map[string]*session),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.jobs = parallel.NewLimiter("batch-rca", s.cfg.MaxJobs)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /"+api.Version+"/flights", s.handleFlights)
	s.mux.HandleFunc("POST /"+api.Version+"/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("POST /"+api.Version+"/sessions/{id}/frames", s.handleFrames)
	s.mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/status", s.handleStatus)
	s.mux.HandleFunc("GET /"+api.Version+"/healthz", s.handleHealthz)
	if s.cfg.JournalDir != "" {
		j, err := newJournal(s.cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.journal = j
		// Rebuild the session table from the journal before accepting
		// traffic, so a client resuming against a restarted server never
		// races its own recovery.
		s.recoverSessions()
	}
	go s.janitor()
	return s, nil
}

func (s *Server) logf(format string, a ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, a...)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: no new sessions or batch jobs are
// admitted, every open session's stream is closed, and all engines are
// given until ctx expires to flush their final verdicts. The HTTP
// listener itself is the caller's to stop (http.Server.Shutdown) —
// status and report reads keep working during the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	if !already {
		close(s.janitorStop)
		<-s.janitorDone
		s.logf("drain: closing %d session(s)", len(open))
	}
	for _, sess := range open {
		sess.closeStream()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("drain: complete")
		return nil
	case <-ctx.Done():
		// Abandon straggler engines: detach them so their goroutines
		// unwind even if a publisher still holds the bus.
		for _, sess := range open {
			if sess.eng != nil {
				sess.eng.Close()
			}
		}
		return ctx.Err()
	}
}

// --- handlers ---

// handleFlights runs batch RCA over an uploaded .sbf recording. The
// request body is the raw flight file; admission is bounded by the job
// limiter and sheds with 429 when saturated.
func (s *Server) handleFlights(w http.ResponseWriter, r *http.Request) {
	span := flightsTimer.Start()
	defer span.Stop()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.writeError(w, errShuttingDown)
		return
	}
	if !s.jobs.TryAcquire() {
		jobsRejected.Inc()
		s.writeError(w, fmt.Errorf("%w: %d batch jobs in flight (cap %d)",
			faults.ErrCapacity, s.jobs.InUse(), s.jobs.Cap()))
		return
	}
	start := s.now()
	flight, err := dataset.Load(r.Body)
	if err != nil {
		s.jobs.Release()
		s.writeError(w, fmt.Errorf("%w: %v", faults.ErrUnprocessable, err))
		return
	}

	// Run the analysis on a goroutine that owns the limiter slot, so a
	// wedged or slow analysis cannot hold the slot past its own return
	// even after the handler gives up on it: the slot frees exactly when
	// the work stops, and a panic inside the analyzer frees it too.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.BatchTimeout)
	defer cancel()
	type result struct {
		report soundboost.Report
		err    error
	}
	ch := make(chan result, 1) // buffered: the handler may be gone
	go func() {
		defer s.jobs.Release()
		defer func() {
			if p := recover(); p != nil {
				ch <- result{err: fmt.Errorf("batch analysis panic: %v", p)}
			}
		}()
		report, err := s.an.Analyze(flight)
		ch <- result{report, err}
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			s.writeError(w, res.err)
			return
		}
		s.writeJSON(w, http.StatusOK, api.FlightResponse{
			Report:         api.ReportFromCore(res.report),
			ElapsedSeconds: s.now().Sub(start).Seconds(),
		})
	case <-ctx.Done():
		// Client gone or deadline hit: shed the request. The analysis
		// keeps its slot until it returns — that is backpressure working,
		// not a leak — and new requests see 429 while it unwinds.
		jobsTimedOut.Inc()
		s.writeError(w, fmt.Errorf("%w after %s", faults.ErrTimeout,
			s.now().Sub(start).Round(time.Millisecond)))
	}
}

// handleSessionCreate opens a streaming session.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	span := sessionsTimer.Start()
	defer span.Stop()
	var req api.SessionRequest
	if err := api.DecodeStrict(r.Body, &req); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	sess, err := s.createSession(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, api.SessionResponse{
		SchemaVersion: api.Version,
		ID:            sess.id,
		State:         sess.stateNow(),
	})
}

// handleFrames feeds one batch of telemetry into a session's bus. The
// three streams are merged by timestamp (stable: audio before IMU
// before GPS at equal times, matching stream.Replay) and published in
// order.
func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	span := framesTimer.Start()
	defer span.Stop()
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req api.FramesRequest
	if err := api.DecodeStrict(r.Body, &req); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	switch st := sess.stateNow(); st {
	case api.SessionOpen:
	case api.SessionFailed:
		s.writeError(w, fmt.Errorf("%w: %q: %s", faults.ErrSessionFailed, sess.id, sess.snapshot(s.now()).FailCause))
		return
	default:
		s.writeError(w, fmt.Errorf("%w: %q", faults.ErrSessionClosed, sess.id))
		return
	}
	sess.touch(s.now())
	accepted, duplicate, err := sess.publish(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	framesAccepted.Add(int64(accepted))
	// Close is honored even on a duplicate resend: the original ack may
	// have been lost after the chunk was accepted but before the close
	// transition, and closeStream is idempotent either way.
	if req.Close {
		if sess.closeStream() {
			sessionsClosed.Inc()
			s.logf("session %s closed by client", sess.id)
		}
	}
	s.writeJSON(w, http.StatusOK, api.FramesResponse{
		SchemaVersion: api.Version,
		Accepted:      accepted,
		Shed:          sess.bus.Dropped(),
		State:         sess.stateNow(),
		Duplicate:     duplicate,
	})
}

// handleReport returns a session's final verdict. The stream must be
// closed first (409 otherwise); the handler then waits for the engine's
// flush, bounded by the request context.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	span := reportTimer.Start()
	defer span.Stop()
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if sess.stateNow() == api.SessionOpen {
		s.writeError(w, fmt.Errorf("%w: %q (close the stream first)", faults.ErrSessionOpen, sess.id))
		return
	}
	select {
	case <-sess.done:
	case <-r.Context().Done():
		return // client gave up while the engine was flushing
	}
	sess.mu.Lock()
	report, runErr := sess.report, sess.runErr
	sess.mu.Unlock()
	if runErr != nil {
		s.writeError(w, runErr)
		return
	}
	s.writeJSON(w, http.StatusOK, api.ReportFromCore(report))
}

// handleStatus returns a live session snapshot. Status polls do not
// refresh the idle timeout — only frames keep a session alive.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	span := statusTimer.Start()
	defer span.Stop()
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, sess.snapshot(s.now()))
}

// handleHealthz reports liveness and occupancy.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	n := len(s.sessions)
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, api.Health{
		SchemaVersion:  api.Version,
		Status:         status,
		ActiveSessions: n,
		SessionCap:     s.cfg.MaxSessions,
		JobsInFlight:   s.jobs.InUse(),
		JobCap:         s.jobs.Cap(),
	})
}

// --- response plumbing ---

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeBadRequest reports a body that failed strict decoding (400).
func (s *Server) writeBadRequest(w http.ResponseWriter, err error) {
	httpErrors.Inc()
	s.writeJSON(w, http.StatusBadRequest, api.Error{Code: api.CodeBadRequest, Error: err.Error()})
}

// writeError maps the shared fault vocabulary onto HTTP statuses: this
// is the single place wire status codes are decided.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	httpErrors.Inc()
	status, code := http.StatusInternalServerError, api.CodeInternal
	switch {
	case errors.Is(err, faults.ErrSessionNotFound):
		status, code = http.StatusNotFound, api.CodeNotFound
	case errors.Is(err, faults.ErrSessionFailed):
		status, code = http.StatusInternalServerError, api.CodeSessionFailed
	case errors.Is(err, faults.ErrTimeout):
		status, code = http.StatusServiceUnavailable, api.CodeTimeout
	case errors.Is(err, faults.ErrSessionClosed),
		errors.Is(err, faults.ErrSessionOpen),
		errors.Is(err, faults.ErrSeqGap),
		errors.Is(err, faults.ErrBusClosed):
		status, code = http.StatusConflict, api.CodeConflict
	case errors.Is(err, faults.ErrNoFlight),
		errors.Is(err, faults.ErrUnprocessable):
		status, code = http.StatusUnprocessableEntity, api.CodeUnprocessable
	case errors.Is(err, faults.ErrCapacity):
		status, code = http.StatusTooManyRequests, api.CodeCapacity
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
	case errors.Is(err, errShuttingDown):
		status, code = http.StatusServiceUnavailable, api.CodeShuttingDown
	case isMaxBytes(err):
		status, code = http.StatusRequestEntityTooLarge, api.CodeBadRequest
	}
	s.writeJSON(w, status, api.Error{Code: code, Error: err.Error()})
}

// isMaxBytes detects http.MaxBytesReader truncation surfaced through
// decode/load errors.
func isMaxBytes(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe) || strings.Contains(err.Error(), "request body too large")
}
