// Package server is SoundBoost's multi-session RCA service: one shared
// calibrated Analyzer serving many concurrent flights over HTTP. Batch
// uploads (POST /v1/flights) run the offline pipeline under a bounded
// admission pool; streaming sessions (POST /v1/sessions + frames) feed a
// per-session mavbus into a per-session stream.Engine, so a streamed
// flight yields the same verdict as a batch upload of the same
// recording. All request/response bodies are the schema-versioned DTOs
// of the top-level api package; internal structs never cross the wire.
//
// Resource bounds and backpressure: the session table is capped
// (finished sessions are LRU-evicted to make room; when every slot is
// live, creation sheds with 429 + Retry-After), the batch pool is a
// parallel.Limiter (full → 429), per-session idle timeouts and hard
// deadlines reclaim abandoned streams, and Shutdown drains gracefully:
// no new work, open streams closed, verdicts flushed.
//
// The package is split along its seams: this file is the server's
// lifecycle (config, construction, drain); router.go is the HTTP layer
// (routes, handlers, error mapping); session.go is session placement and
// the per-session worker; recovery.go rebuilds the table from the
// journal after a crash. The durable journal format itself lives in
// internal/journal, shared with the fleet gateway that uses it as the
// session-transfer format.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"soundboost/internal/chaos"
	soundboost "soundboost/internal/core"
	"soundboost/internal/journal"
	"soundboost/internal/parallel"
)

// errShuttingDown sheds requests arriving during a graceful drain
// (HTTP 503). Unexported: it is a lifecycle condition of this server,
// not part of the shared fault vocabulary.
var errShuttingDown = errors.New("server: shutting down")

// Config tunes the service. The zero value selects the defaults noted
// on each field.
type Config struct {
	// MaxSessions bounds the session table, finished sessions included
	// (default 64).
	MaxSessions int
	// MaxJobs bounds concurrent batch flight analyses (default 4).
	MaxJobs int
	// IdleTimeout closes an open session that has received no frames
	// for this long (default 60s).
	IdleTimeout time.Duration
	// MaxSessionAge is the hard deadline: an open session older than
	// this is closed regardless of activity (default 15m).
	MaxSessionAge time.Duration
	// SessionBuffer is the default per-topic subscription depth for
	// session engines (default 8192); SessionRequest.Buffer overrides
	// per session.
	SessionBuffer int
	// MaxBodyBytes caps request bodies (default 256 MiB — a flight
	// upload carries raw audio).
	MaxBodyBytes int64
	// SweepInterval is the janitor tick (default 1s).
	SweepInterval time.Duration
	// RetryAfterSeconds is advertised on 429 responses (default 1).
	RetryAfterSeconds int
	// BatchTimeout bounds one batch flight analysis (default 2m). A
	// request whose analysis outlives it (or whose client disconnects)
	// gets 503/timeout; the worker slot frees when the abandoned analysis
	// actually returns.
	BatchTimeout time.Duration
	// JournalDir, when set, enables crash-safe session recovery: accepted
	// chunks are fsynced to a write-ahead log before they are
	// acknowledged, lifecycle transitions are checkpointed, and a
	// restarted server rebuilds its session table from the directory. The
	// same directory doubles as the fleet gateway's failover source: a
	// dead replica's sessions are replayed from it onto a successor. See
	// DESIGN.md "Failure domains & recovery" and "Fleet routing &
	// handoff".
	JournalDir string
	// SessionInjector, when set, supplies a chaos fault schedule for each
	// new session: the returned injector (nil = no faults) wraps the
	// session's bus publish path. Used by the `soundboost chaos` soak to
	// inject message-plane faults server-side; never set in production.
	SessionInjector func(id, flight string) *chaos.Injector
	// Logf, when set, receives one line per lifecycle event (session
	// opened/closed/evicted/failed/recovered, drain).
	Logf func(format string, a ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.MaxSessionAge <= 0 {
		c.MaxSessionAge = 15 * time.Minute
	}
	if c.SessionBuffer <= 0 {
		c.SessionBuffer = 8192
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = time.Second
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 2 * time.Minute
	}
	return c
}

// Server hosts the RCA service over one shared calibrated analyzer.
type Server struct {
	an      *soundboost.Analyzer
	cfg     Config
	jobs    *parallel.Limiter
	mux     *http.ServeMux
	now     func() time.Time
	journal *journal.Store // nil unless Config.JournalDir is set

	// Follower journal copies held for sessions served elsewhere in the
	// fleet (see follower.go). Nil unless journaling is enabled.
	followers      *journal.Store
	followerMu     sync.Mutex
	followerCopies map[string]*followerCopy

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	draining bool

	wg          sync.WaitGroup
	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds a server around a calibrated analyzer and starts its
// janitor. Callers must Shutdown (or Close) to stop it.
func New(an *soundboost.Analyzer, cfg Config) (*Server, error) {
	if an == nil || an.Model == nil || an.IMU == nil || an.GPSAudioOnly == nil || an.GPSAudioIMU == nil {
		return nil, fmt.Errorf("server: nil or incomplete analyzer")
	}
	s := &Server{
		an:          an,
		cfg:         cfg.withDefaults(),
		now:         time.Now,
		sessions:    make(map[string]*session),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.jobs = parallel.NewLimiter("batch-rca", s.cfg.MaxJobs)
	s.mux = s.routes()
	if s.cfg.JournalDir != "" {
		j, err := journal.Open(s.cfg.JournalDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.journal = j
		if err := s.openFollowerStore(); err != nil {
			return nil, err
		}
		// Rebuild the session table from the journal before accepting
		// traffic, so a client resuming against a restarted server never
		// races its own recovery.
		s.recoverSessions()
	}
	go s.janitor()
	return s, nil
}

func (s *Server) logf(format string, a ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, a...)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: no new sessions or batch jobs are
// admitted, every open session's stream is closed, and all engines are
// given until ctx expires to flush their final verdicts. The HTTP
// listener itself is the caller's to stop (http.Server.Shutdown) —
// status and report reads keep working during the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	if !already {
		close(s.janitorStop)
		<-s.janitorDone
		s.closeFollowers()
		s.logf("drain: closing %d session(s)", len(open))
	}
	for _, sess := range open {
		sess.closeStream()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("drain: complete")
		return nil
	case <-ctx.Done():
		// Abandon straggler engines: detach them so their goroutines
		// unwind even if a publisher still holds the bus.
		for _, sess := range open {
			if sess.eng != nil {
				sess.eng.Close()
			}
		}
		return ctx.Err()
	}
}
