package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"soundboost/api"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/stream"
)

// runPrecisionSession drives a flight through the streaming endpoints
// with an explicit session precision and returns the final wire report.
func runPrecisionSession(t *testing.T, s *Server, f *dataset.Flight, precision string, nBatches int) api.Report {
	t.Helper()
	created := decode[api.SessionResponse](t, do(t, s, "POST", "/v1/sessions", api.SessionRequest{
		Flight:       f.Name,
		SampleRateHz: f.Audio.SampleRate,
		Buffer:       1 << 15, // lossless: every frame must reach the engine
		Precision:    precision,
	}), http.StatusCreated)
	if created.State != api.SessionOpen {
		t.Fatalf("new session state = %q", created.State)
	}
	report, err := feedSession(s, "/v1/sessions/"+created.ID, f, nBatches)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestFloat32ZeroFlipAllPaths is the corpus-wide zero verdict-flip
// guarantee of the float32 fast path: over the same verified corpus the
// triage parity test uses, re-precisioning the analyzer to float32 must
// not change a single root-cause verdict on any serving surface — the
// batch path (Analyze, with and without the triage tier), the streaming
// path (live engine opened with stream.WithPrecision), and the served
// path (HTTP sessions opened with the wire precision field). Run under
// -race in CI alongside the triage flip test.
func TestFloat32ZeroFlipAllPaths(t *testing.T) {
	an, corpus := triageTestAnalyzer(t)
	an32, err := an.WithPrecision(soundboost.Float32)
	if err != nil {
		t.Fatal(err)
	}
	full := an.WithoutTriage()
	full32 := an32.WithoutTriage()

	s, err := New(an, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	fastpath := 0
	for _, f := range corpus {
		batch64, err := full.Analyze(f)
		if err != nil {
			t.Fatalf("float64 Analyze %s: %v", f.Name, err)
		}
		batch32, err := full32.Analyze(f)
		if err != nil {
			t.Fatalf("float32 Analyze %s: %v", f.Name, err)
		}
		if batch32.Cause != batch64.Cause {
			t.Errorf("%s: batch verdict flipped under float32: %q vs %q", f.Name, batch32.Cause, batch64.Cause)
		}
		if batch32.Precision != soundboost.Float32 || batch64.Precision != soundboost.Float64 {
			t.Errorf("%s: report precisions = (%q, %q), want (float32, float64)",
				f.Name, batch32.Precision, batch64.Precision)
		}

		// Triage tier on top of the float32 signature path: verdicts must
		// still match the exact pipeline, and the tier must short-circuit
		// the same flights it short-circuits under float64.
		tri64, err := an.Analyze(f)
		if err != nil {
			t.Fatalf("float64 triage Analyze %s: %v", f.Name, err)
		}
		tri32, err := an32.Analyze(f)
		if err != nil {
			t.Fatalf("float32 triage Analyze %s: %v", f.Name, err)
		}
		if tri32.Cause != tri64.Cause {
			t.Errorf("%s: triage verdict flipped under float32: %q vs %q", f.Name, tri32.Cause, tri64.Cause)
		}
		fast64 := tri64 == soundboost.FastBenignReport(f.Name, an)
		fast32 := tri32 == soundboost.FastBenignReport(f.Name, an32)
		if fast64 != fast32 {
			t.Errorf("%s: fast-path disagreement (float64 %v, float32 %v)", f.Name, fast64, fast32)
		}
		if fast32 {
			fastpath++
		}

		stream32 := replayStream(t, an, f, true, stream.WithPrecision(soundboost.Float32))
		if stream32.Cause != batch64.Cause {
			t.Errorf("%s: float32 stream cause %q, float64 batch %q", f.Name, stream32.Cause, batch64.Cause)
		}
		if stream32.Precision != soundboost.Float32 {
			t.Errorf("%s: float32 stream report precision = %q", f.Name, stream32.Precision)
		}

		served32 := runPrecisionSession(t, s, f, string(soundboost.Float32), 6)
		if served32.Cause != string(tri64.Cause) {
			t.Errorf("%s: float32 served cause %q, float64 batch %q", f.Name, served32.Cause, tri64.Cause)
		}
		if served32.Precision != string(soundboost.Float32) {
			t.Errorf("%s: served precision = %q, want float32", f.Name, served32.Precision)
		}
		if served32.Tolerance != soundboost.Float32Tolerance {
			t.Errorf("%s: served tolerance = %g, want %g", f.Name, served32.Tolerance, soundboost.Float32Tolerance)
		}
	}
	t.Logf("float32 fast-path flights: %d/%d", fastpath, len(corpus))
	if fastpath == 0 {
		t.Error("no corpus flight took the float32 fast path — the parity check is vacuous")
	}
}
