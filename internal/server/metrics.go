package server

import (
	"strings"

	"soundboost/internal/obs"
)

// Server metrics, resolved once at init and gated by obs.Enable (serve
// them with -debug-addr). server.sessions.active tracks table occupancy;
// the reject counters split backpressure by cause (full session table vs
// full batch pool); the per-endpoint timers are latency histograms with
// p50/p95/p99 in the registry snapshot. The batch pool's live queue
// depth is parallel.limiter.batch-rca.in_use.
var (
	sessionsActive   = obs.Default.Gauge("server.sessions.active")
	sessionsOpened   = obs.Default.Counter("server.sessions.opened")
	sessionsClosed   = obs.Default.Counter("server.sessions.closed")
	sessionsExpired  = obs.Default.Counter("server.sessions.expired_idle")
	sessionsDeadline = obs.Default.Counter("server.sessions.expired_deadline")
	sessionsEvicted  = obs.Default.Counter("server.sessions.evicted")
	sessionsRejected = obs.Default.Counter("server.sessions.rejected")
	// sessions.panicked counts engine goroutines that died by panic —
	// each one is a contained failure domain (state "failed"), never a
	// process crash; the chaos soak reconciles it against
	// chaos.injected.poison.
	sessionsPanicked = obs.Default.Counter("server.sessions.panicked")
	// sessions.recovered counts sessions rebuilt from the journal at
	// startup.
	sessionsRecovered = obs.Default.Counter("server.sessions.recovered")
	// sessions.corrupt counts sessions whose chunk log was damaged before
	// its torn tail — recovered as failed with the cause recorded, never
	// silently replayed from a truncated prefix.
	sessionsCorrupt = obs.Default.Counter("server.sessions.corrupt")
	// journal.chunks counts write-ahead chunk appends (fsynced before the
	// client's 200).
	journalChunks = obs.Default.Counter("server.journal.chunks")
	// journal.exports counts session journal exports served to fleet
	// gateways for handoff.
	journalExports = obs.Default.Counter("server.journal.exports")
	// sessions.empty_cleaned counts empty journals (crash mid-create)
	// reclaimed at startup instead of recovered.
	sessionsEmptyCleaned = obs.Default.Counter("server.sessions.empty_cleaned")
	// journal.follower.* track the replica-side half of fleet journal
	// replication: copies of other replicas' session journals held here
	// as failover sources (see follower.go). appends are fsynced chunk
	// receipts, exports are copies served back to a gateway whose owner
	// died disk-and-all, expired are idle copies reclaimed by the
	// janitor, and sessions gauges live copies.
	followerAppends  = obs.Default.Counter("server.journal.follower.appends")
	followerExports  = obs.Default.Counter("server.journal.follower.exports")
	followerExpired  = obs.Default.Counter("server.journal.follower.expired")
	followerSessions = obs.Default.Gauge("server.journal.follower.sessions")
	jobsRejected     = obs.Default.Counter("server.jobs.rejected")
	// jobs.timed_out counts batch analyses abandoned at their deadline;
	// their limiter slots free when the work returns.
	jobsTimedOut   = obs.Default.Counter("server.jobs.timed_out")
	framesAccepted = obs.Default.Counter("server.frames.accepted")
	httpErrors     = obs.Default.Counter("server.http.errors")

	// sessionsOpenedByGroup counts opened sessions per flight-label group
	// (see labelGroup): workload drivers that label sessions
	// "sweep/trial-…", "chaos-…", etc. become separately countable in the
	// registry snapshot, so a sweep's sessions are attributable among
	// whatever else the server is doing.
	sessionsOpenedByGroup = func(flight string) *obs.Counter {
		return obs.Default.Counter("server.sessions.opened." + labelGroup(flight))
	}

	flightsTimer        = obs.Default.Timer("server.http.flights")
	sessionsTimer       = obs.Default.Timer("server.http.sessions.create")
	framesTimer         = obs.Default.Timer("server.http.sessions.frames")
	reportTimer         = obs.Default.Timer("server.http.sessions.report")
	statusTimer         = obs.Default.Timer("server.http.sessions.status")
	journalExportTimer  = obs.Default.Timer("server.http.sessions.journal")
	followerAppendTimer = obs.Default.Timer("server.http.sessions.journal_append")
)

// labelGroup maps a session's flight label to a bounded metric group:
// the prefix before the first "/" when the label carries one (the
// convention workload drivers use — "sweep/trial-0042" groups as
// "sweep"), "default" otherwise. Grouping on the client-chosen prefix
// rather than the whole label keeps counter cardinality bounded by the
// number of distinct workloads, not sessions. Characters the registry
// treats as separators are flattened.
func labelGroup(flight string) string {
	group := flight
	if i := strings.IndexByte(group, '/'); i >= 0 {
		group = group[:i]
	}
	group = strings.TrimSpace(group)
	if group == "" {
		return "default"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, group)
}
