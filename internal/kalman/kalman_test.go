package kalman

import (
	"math"
	"math/rand"
	"testing"

	"soundboost/internal/mathx"
)

func TestNewFilterDimensionCheck(t *testing.T) {
	if _, err := NewFilter([]float64{1, 2}, mathx.Identity(3)); err == nil {
		t.Error("mismatched covariance accepted")
	}
	if _, err := NewFilter([]float64{1, 2}, mathx.Identity(2)); err != nil {
		t.Errorf("valid init rejected: %v", err)
	}
}

// A 1-D constant-signal filter must converge to the true value with
// shrinking covariance.
func TestFilterConvergesOnConstant(t *testing.T) {
	f, err := NewFilter([]float64{0}, mathx.Diag(10))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	F := mathx.Identity(1)
	Q := mathx.Diag(1e-6)
	H := mathx.Identity(1)
	R := mathx.Diag(0.25)
	const truth = 7.0
	for i := 0; i < 300; i++ {
		if err := f.Predict(F, nil, nil, Q); err != nil {
			t.Fatal(err)
		}
		z := truth + rng.NormFloat64()*0.5
		if err := f.Update(H, []float64{z}, R); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(f.X[0]-truth) > 0.2 {
		t.Errorf("estimate %v, want ~%v", f.X[0], truth)
	}
	if f.P.At(0, 0) > 0.05 {
		t.Errorf("covariance %v did not shrink", f.P.At(0, 0))
	}
}

// Tracking a constant-velocity target with a position-only measurement:
// the classic 2-state problem. The filter must recover the velocity.
func TestFilterRecoversVelocityFromPosition(t *testing.T) {
	dt := 0.1
	F := mathx.MustFromRows([][]float64{{1, dt}, {0, 1}})
	Q := mathx.MustFromRows([][]float64{{1e-5, 0}, {0, 1e-5}})
	H := mathx.MustFromRows([][]float64{{1, 0}})
	R := mathx.Diag(0.04)
	f, err := NewFilter([]float64{0, 0}, mathx.Diag(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const vel = 2.5
	for i := 0; i < 400; i++ {
		if err := f.Predict(F, nil, nil, Q); err != nil {
			t.Fatal(err)
		}
		pos := vel*float64(i)*dt + rng.NormFloat64()*0.2
		if err := f.Update(H, []float64{pos}, R); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(f.X[1]-vel) > 0.1 {
		t.Errorf("velocity estimate %v, want ~%v", f.X[1], vel)
	}
}

func TestFilterControlInput(t *testing.T) {
	// x' = x + u with noiseless dynamics: the state must integrate u.
	f, err := NewFilter([]float64{0}, mathx.Diag(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	F := mathx.Identity(1)
	B := mathx.Diag(0.5)
	Q := mathx.Diag(1e-12)
	for i := 0; i < 10; i++ {
		if err := f.Predict(F, B, []float64{2}, Q); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(f.X[0]-10) > 1e-6 {
		t.Errorf("state %v, want 10", f.X[0])
	}
}

func TestFilterCovarianceStaysSymmetric(t *testing.T) {
	f, err := NewFilter([]float64{0, 0, 0}, mathx.Diag(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	F := mathx.MustFromRows([][]float64{{1, 0.1, 0}, {0, 1, 0.1}, {0, 0, 1}})
	Q := mathx.Diag(0.01, 0.01, 0.01)
	H := mathx.MustFromRows([][]float64{{1, 0, 0}, {0, 1, 0}})
	R := mathx.Diag(0.1, 0.1)
	for i := 0; i < 100; i++ {
		if err := f.Predict(F, nil, nil, Q); err != nil {
			t.Fatal(err)
		}
		if err := f.Update(H, []float64{rng.NormFloat64(), rng.NormFloat64()}, R); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			for c := r + 1; c < 3; c++ {
				if math.Abs(f.P.At(r, c)-f.P.At(c, r)) > 1e-12 {
					t.Fatalf("covariance asymmetric at step %d", i)
				}
			}
			if f.P.At(r, r) < 0 {
				t.Fatalf("negative variance at step %d", i)
			}
		}
	}
}

func TestVelocityEstimatorModes(t *testing.T) {
	for _, mode := range []Mode{ModeAudioOnly, ModeAudioIMU, ModeIMUOnly} {
		t.Run(string(mode), func(t *testing.T) {
			e, err := NewVelocityEstimator(DefaultVelocityConfig(mode), mathx.Vec3{})
			if err != nil {
				t.Fatal(err)
			}
			if e.Mode() != mode {
				t.Errorf("Mode() = %v", e.Mode())
			}
			// Constant 1 m/s^2 north acceleration on both streams for 2 s.
			a := mathx.Vec3{X: 1}
			for i := 0; i < 200; i++ {
				if err := e.Step(a, a, 0.01); err != nil {
					t.Fatal(err)
				}
			}
			v := e.Velocity()
			if math.Abs(v.X-2) > 0.25 {
				t.Errorf("velocity X = %v, want ~2", v.X)
			}
			if math.Abs(v.Y) > 0.1 || math.Abs(v.Z) > 0.1 {
				t.Errorf("cross-axis leakage: %v", v)
			}
		})
	}
}

func TestVelocityEstimatorUnknownMode(t *testing.T) {
	cfg := DefaultVelocityConfig("bogus")
	if _, err := NewVelocityEstimator(cfg, mathx.Vec3{}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestVelocityEstimatorRejectsBadDt(t *testing.T) {
	e, err := NewVelocityEstimator(DefaultVelocityConfig(ModeAudioIMU), mathx.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(mathx.Vec3{}, mathx.Vec3{}, 0); err == nil {
		t.Error("zero dt accepted")
	}
}

// TestVelocityEstimatorIrregularDt feeds the timestamp pathologies a
// lossy bus produces. Rejected steps must leave the estimate untouched;
// jittered-but-valid steps must integrate to the same place as a uniform
// cadence covering the same total time.
func TestVelocityEstimatorIrregularDt(t *testing.T) {
	a := mathx.Vec3{X: 1}
	nan, inf := math.NaN(), math.Inf(1)

	t.Run("rejects garbage without state damage", func(t *testing.T) {
		e, err := NewVelocityEstimator(DefaultVelocityConfig(ModeAudioIMU), mathx.Vec3{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := e.Step(a, a, 0.01); err != nil {
				t.Fatal(err)
			}
		}
		before := e.Velocity()
		bad := []struct {
			name       string
			audio, imu mathx.Vec3
			dt         float64
		}{
			{"negative dt", a, a, -0.01},
			{"zero dt", a, a, 0},
			{"NaN dt", a, a, nan},
			{"+Inf dt", a, a, inf},
			{"NaN audio accel", mathx.Vec3{X: nan}, a, 0.01},
			{"Inf imu accel", a, mathx.Vec3{Z: inf}, 0.01},
		}
		for _, tc := range bad {
			if err := e.Step(tc.audio, tc.imu, tc.dt); err == nil {
				t.Errorf("%s: accepted", tc.name)
			}
		}
		after := e.Velocity()
		if after != before {
			t.Errorf("rejected steps mutated the estimate: %v -> %v", before, after)
		}
		for _, c := range []float64{after.X, after.Y, after.Z} {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("non-finite estimate %v after rejected steps", after)
			}
		}
	})

	t.Run("jittered cadence integrates like uniform", func(t *testing.T) {
		uniform, err := NewVelocityEstimator(DefaultVelocityConfig(ModeAudioOnly), mathx.Vec3{})
		if err != nil {
			t.Fatal(err)
		}
		jitter, err := NewVelocityEstimator(DefaultVelocityConfig(ModeAudioOnly), mathx.Vec3{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		total := 0.0
		for total < 2 {
			dt := 0.005 + 0.01*rng.Float64()
			if err := jitter.Step(a, a, dt); err != nil {
				t.Fatal(err)
			}
			total += dt
		}
		steps := int(total / 0.01)
		for i := 0; i < steps; i++ {
			if err := uniform.Step(a, a, total/float64(steps)); err != nil {
				t.Fatal(err)
			}
		}
		du := uniform.Velocity().X
		dj := jitter.Velocity().X
		if math.Abs(du-dj) > 0.2 {
			t.Errorf("jittered estimate %v vs uniform %v over the same %v s", dj, du, total)
		}
	})
}

// The core fusion property: when the IMU stream is biased (attack) but the
// audio stream is clean, the audio-only estimator tracks truth while the
// IMU-only estimator diverges.
func TestVelocityEstimatorAudioResistsIMUBias(t *testing.T) {
	audioOnly, err := NewVelocityEstimator(DefaultVelocityConfig(ModeAudioOnly), mathx.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	imuOnly, err := NewVelocityEstimator(DefaultVelocityConfig(ModeIMUOnly), mathx.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	trueAccel := mathx.Vec3{} // hovering
	bias := mathx.Vec3{Z: 2}  // IMU biasing attack
	for i := 0; i < 500; i++ {
		noise := mathx.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Scale(0.05)
		audio := trueAccel.Add(noise)
		imu := trueAccel.Add(bias).Add(noise)
		if err := audioOnly.Step(audio, imu, 0.01); err != nil {
			t.Fatal(err)
		}
		if err := imuOnly.Step(audio, imu, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	if v := audioOnly.Velocity().Norm(); v > 0.5 {
		t.Errorf("audio-only velocity drifted to %v under IMU bias", v)
	}
	if v := imuOnly.Velocity().Norm(); v < 2 {
		t.Errorf("imu-only velocity %v did not reflect the bias", v)
	}
}

// With a benign IMU, audio+IMU fusion should estimate at least as well as
// audio alone under audio noise.
func TestVelocityEstimatorFusionImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	run := func(mode Mode) float64 {
		e, err := NewVelocityEstimator(DefaultVelocityConfig(mode), mathx.Vec3{})
		if err != nil {
			t.Fatal(err)
		}
		trueVel := mathx.Vec3{}
		var sumErr float64
		const steps = 2000
		for i := 0; i < steps; i++ {
			trueAccel := mathx.Vec3{X: math.Sin(float64(i) * 0.01)}
			trueVel = trueVel.Add(trueAccel.Scale(0.01))
			audio := trueAccel.Add(mathx.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Scale(0.3))
			imu := trueAccel.Add(mathx.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Scale(0.05))
			if err := e.Step(audio, imu, 0.01); err != nil {
				t.Fatal(err)
			}
			sumErr += e.Velocity().Sub(trueVel).Norm()
		}
		return sumErr / steps
	}
	audioErr := run(ModeAudioOnly)
	fusedErr := run(ModeAudioIMU)
	if fusedErr > audioErr {
		t.Errorf("fusion error %v worse than audio-only %v", fusedErr, audioErr)
	}
}

func TestCovarianceAccessor(t *testing.T) {
	e, err := NewVelocityEstimator(DefaultVelocityConfig(ModeAudioIMU), mathx.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	c0 := e.Covariance()
	for i := 0; i < 50; i++ {
		if err := e.Step(mathx.Vec3{}, mathx.Vec3{}, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	c1 := e.Covariance()
	if !(c1.X < c0.X && c1.Y < c0.Y && c1.Z < c0.Z) {
		t.Errorf("covariance did not shrink: %v -> %v", c0, c1)
	}
}
