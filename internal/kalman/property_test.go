package kalman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"soundboost/internal/mathx"
)

// Property: under arbitrary (seeded) predict/update sequences, the filter
// covariance stays symmetric with non-negative diagonal, and the state
// stays finite.
func TestFilterCovariancePSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		filt, err := NewFilter(x0, mathx.Identity(n))
		if err != nil {
			return false
		}
		F := mathx.Identity(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					F.Set(i, j, rng.NormFloat64()*0.1)
				}
			}
		}
		Q := mathx.Identity(n).Scale(0.01 + rng.Float64()*0.1)
		H := mathx.Identity(n)
		R := mathx.Identity(n).Scale(0.1 + rng.Float64())
		for step := 0; step < 50; step++ {
			if err := filt.Predict(F, nil, nil, Q); err != nil {
				return false
			}
			z := make([]float64, n)
			for i := range z {
				z[i] = rng.NormFloat64() * 3
			}
			if err := filt.Update(H, z, R); err != nil {
				return false
			}
			for i := 0; i < n; i++ {
				if filt.P.At(i, i) < -1e-9 {
					return false
				}
				if math.IsNaN(filt.X[i]) || math.IsInf(filt.X[i], 0) {
					return false
				}
				for j := i + 1; j < n; j++ {
					if math.Abs(filt.P.At(i, j)-filt.P.At(j, i)) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the velocity estimator is translation-equivariant — shifting
// both acceleration streams by a constant shifts the velocity trajectory
// by the integral of that constant.
func TestVelocityEstimatorLinearityProperty(t *testing.T) {
	f := func(seed int64, shiftRaw float64) bool {
		shift := math.Mod(shiftRaw, 3)
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 0.5
		}
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultVelocityConfig(ModeAudioOnly)
		base, err := NewVelocityEstimator(cfg, mathx.Vec3{})
		if err != nil {
			return false
		}
		shifted, err := NewVelocityEstimator(cfg, mathx.Vec3{})
		if err != nil {
			return false
		}
		const dt = 0.05
		const steps = 100
		accels := make([]mathx.Vec3, steps)
		for i := range accels {
			accels[i] = mathx.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		}
		for i := 0; i < steps; i++ {
			a := accels[i]
			aS := a.Add(mathx.Vec3{X: shift})
			if err := base.Step(a, a, dt); err != nil {
				return false
			}
			if err := shifted.Step(aS, aS, dt); err != nil {
				return false
			}
		}
		wantShift := shift * dt * steps
		got := shifted.Velocity().Sub(base.Velocity())
		return math.Abs(got.X-wantShift) < 0.15*math.Abs(wantShift)+0.05 &&
			math.Abs(got.Y) < 0.05 && math.Abs(got.Z) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
