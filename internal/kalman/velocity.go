package kalman

import (
	"fmt"
	"math"

	"soundboost/internal/mathx"
)

// Mode selects which sensors feed the velocity estimator — the three
// configurations compared in Tab. II.
type Mode string

const (
	// ModeAudioOnly is Version 1 of the paper's KF: used when the IMU is
	// flagged compromised. Audio acceleration drives both the prediction
	// and (integrated to a velocity pseudo-measurement) the update.
	ModeAudioOnly Mode = "audio-only"
	// ModeAudioIMU is Version 2, the customized KF: IMU acceleration
	// drives the prediction, audio-derived velocity drives the update.
	ModeAudioIMU Mode = "audio+imu"
	// ModeIMUOnly is the failsafe baseline (ArduPilot EKF failsafe
	// analogue): IMU drives both steps; no audio.
	ModeIMUOnly Mode = "imu-only"
)

// VelocityConfig tunes the noise covariances of the velocity estimator.
type VelocityConfig struct {
	Mode Mode
	// ProcessNoise is the per-axis process noise density ((m/s^2)^2 s).
	ProcessNoise float64
	// AudioMeasNoise is the per-axis variance of audio-derived velocity.
	AudioMeasNoise float64
	// IMUMeasNoise is the per-axis variance of IMU-derived velocity.
	IMUMeasNoise float64
	// InitialVar seeds the covariance diagonal.
	InitialVar float64
	// AdaptiveR enables innovation-based scaling of the measurement noise:
	// when the velocity pseudo-measurement's innovations grow far beyond
	// the configured noise, its weight shrinks. This implements the
	// paper's "weights ... reflect their respective reliabilities and are
	// updated dynamically" and is what degrades gracefully under
	// amplification-style sound attacks (Tab. III).
	AdaptiveR bool
	// AdaptTau is the innovation-EWMA time constant in steps.
	AdaptTau float64
	// AdaptMax caps the noise inflation factor.
	AdaptMax float64
}

// DefaultVelocityConfig returns tuned covariances for the given mode.
func DefaultVelocityConfig(mode Mode) VelocityConfig {
	return VelocityConfig{
		Mode:           mode,
		ProcessNoise:   0.05,
		AudioMeasNoise: 0.4,
		IMUMeasNoise:   0.2,
		InitialVar:     1.0,
		AdaptiveR:      mode == ModeAudioIMU,
		AdaptTau:       20,
		AdaptMax:       50,
	}
}

// VelocityEstimator fuses acceleration streams into a NED velocity
// estimate, per the paper's §III-C2 formulation: the state is the
// 3-velocity, acceleration enters as the control input (first kinematic
// formula v1 = v0 + a·t), and velocity pseudo-measurements computed from
// the audio (or IMU) acceleration refine the estimate.
type VelocityEstimator struct {
	cfg    VelocityConfig
	filter *Filter
	// audioVel and imuVel dead-reckon the velocity pseudo-measurements.
	audioVel mathx.Vec3
	imuVel   mathx.Vec3
	steps    int
	// innovEWMA tracks the squared innovation magnitude for adaptive R.
	innovEWMA float64
}

// NewVelocityEstimator builds an estimator starting from v0.
func NewVelocityEstimator(cfg VelocityConfig, v0 mathx.Vec3) (*VelocityEstimator, error) {
	switch cfg.Mode {
	case ModeAudioOnly, ModeAudioIMU, ModeIMUOnly:
	default:
		return nil, fmt.Errorf("kalman: unknown velocity mode %q", cfg.Mode)
	}
	f, err := NewFilter(v0.Slice(), mathx.Diag(cfg.InitialVar, cfg.InitialVar, cfg.InitialVar))
	if err != nil {
		return nil, err
	}
	return &VelocityEstimator{cfg: cfg, filter: f, audioVel: v0, imuVel: v0}, nil
}

// Step advances the estimator by dt given the NED-transformed audio
// acceleration prediction and the NED-transformed IMU acceleration
// (gravity-compensated). Unused inputs for the mode are ignored.
//
// dt must be a positive finite interval: a lossy or reordered telemetry
// bus delivers jittered, zero, negative, and occasionally non-finite
// timestamp deltas, and integrating any of those would corrupt the state
// irrecoverably. Such steps are rejected with an error and leave the
// estimator untouched, so the caller can skip the sample and continue.
// Non-finite acceleration inputs are rejected for the same reason.
func (e *VelocityEstimator) Step(audioAccelNED, imuAccelNED mathx.Vec3, dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("kalman: non-positive dt %g", dt)
	}
	if math.IsNaN(dt) || math.IsInf(dt, 0) {
		return fmt.Errorf("kalman: non-finite dt %g", dt)
	}
	if !audioAccelNED.IsFinite() || !imuAccelNED.IsFinite() {
		return fmt.Errorf("kalman: non-finite acceleration input (audio %v, imu %v)", audioAccelNED, imuAccelNED)
	}
	e.steps++
	e.audioVel = e.audioVel.Add(audioAccelNED.Scale(dt))
	e.imuVel = e.imuVel.Add(imuAccelNED.Scale(dt))

	F := mathx.Identity(3)
	B := mathx.Diag(dt, dt, dt)
	q := e.cfg.ProcessNoise * dt
	Q := mathx.Diag(q, q, q)
	H := mathx.Identity(3)

	var predictAccel mathx.Vec3
	var meas mathx.Vec3
	var measVar float64
	switch e.cfg.Mode {
	case ModeAudioOnly:
		predictAccel = audioAccelNED
		meas = e.audioVel
		measVar = e.cfg.AudioMeasNoise
	case ModeAudioIMU:
		predictAccel = imuAccelNED
		meas = e.audioVel
		measVar = e.cfg.AudioMeasNoise
	case ModeIMUOnly:
		predictAccel = imuAccelNED
		meas = e.imuVel
		measVar = e.cfg.IMUMeasNoise
	}
	if err := e.filter.Predict(F, B, predictAccel.Slice(), Q); err != nil {
		return err
	}
	if e.cfg.AdaptiveR {
		// Scale the measurement noise by the ratio of recent innovation
		// power to the configured variance, so implausible measurement
		// streams (e.g. amplified-sound predictions) lose influence.
		innovSq := meas.Sub(e.Velocity()).NormSq() / 3
		tau := e.cfg.AdaptTau
		if tau < 1 {
			tau = 1
		}
		e.innovEWMA += (innovSq - e.innovEWMA) / tau
		scale := e.innovEWMA / measVar
		if scale < 1 {
			scale = 1
		}
		if e.cfg.AdaptMax > 1 && scale > e.cfg.AdaptMax {
			scale = e.cfg.AdaptMax
		}
		measVar *= scale
	}
	R := mathx.Diag(measVar, measVar, measVar)
	if err := e.filter.Update(H, meas.Slice(), R); err != nil {
		return err
	}
	// Leak the dead-reckoned pseudo-measurement streams toward the fused
	// estimate so their drift stays bounded over long flights.
	fused := e.Velocity()
	const leak = 0.02
	e.audioVel = e.audioVel.Lerp(fused, leak)
	e.imuVel = e.imuVel.Lerp(fused, leak)
	return nil
}

// Velocity returns the fused velocity estimate.
func (e *VelocityEstimator) Velocity() mathx.Vec3 {
	return mathx.Vec3{X: e.filter.X[0], Y: e.filter.X[1], Z: e.filter.X[2]}
}

// Covariance returns the current covariance diagonal.
func (e *VelocityEstimator) Covariance() mathx.Vec3 {
	return mathx.Vec3{X: e.filter.P.At(0, 0), Y: e.filter.P.At(1, 1), Z: e.filter.P.At(2, 2)}
}

// Mode returns the estimator's configuration mode.
func (e *VelocityEstimator) Mode() Mode { return e.cfg.Mode }
