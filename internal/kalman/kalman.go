// Package kalman implements the linear Kalman filtering used in
// SoundBoost's GPS-attack RCA stage (paper §III-C2): a generic linear KF
// plus the three velocity-estimator variants the evaluation compares —
// audio-only (compromised IMU), the customized audio+IMU fusion (benign
// IMU), and the failsafe IMU-only baseline.
package kalman

import (
	"fmt"

	"soundboost/internal/mathx"
)

// Filter is a generic linear Kalman filter over an n-dimensional state.
type Filter struct {
	// X is the state estimate.
	X []float64
	// P is the state covariance.
	P *mathx.Matrix
}

// NewFilter initialises a filter with state x0 and covariance p0 (copied).
func NewFilter(x0 []float64, p0 *mathx.Matrix) (*Filter, error) {
	if p0.Rows() != len(x0) || p0.Cols() != len(x0) {
		return nil, fmt.Errorf("kalman: covariance %dx%d does not match state dim %d", p0.Rows(), p0.Cols(), len(x0))
	}
	return &Filter{X: append([]float64(nil), x0...), P: p0.Clone()}, nil
}

// Predict advances the state: x = F x + B u, P = F P Fᵀ + Q.
// B and u may be nil for autonomous systems.
func (f *Filter) Predict(F, B *mathx.Matrix, u []float64, Q *mathx.Matrix) error {
	fx, err := F.MulVec(f.X)
	if err != nil {
		return fmt.Errorf("kalman: predict state: %w", err)
	}
	if B != nil && u != nil {
		bu, err := B.MulVec(u)
		if err != nil {
			return fmt.Errorf("kalman: predict control: %w", err)
		}
		for i := range fx {
			fx[i] += bu[i]
		}
	}
	f.X = fx

	fp, err := F.Mul(f.P)
	if err != nil {
		return err
	}
	fpft, err := fp.Mul(F.Transpose())
	if err != nil {
		return err
	}
	f.P, err = fpft.Add(Q)
	if err != nil {
		return err
	}
	f.P.Symmetrize()
	return nil
}

// Update folds in measurement z with model H and noise R:
// K = P Hᵀ (H P Hᵀ + R)⁻¹; x += K (z - H x); P = (I - K H) P.
func (f *Filter) Update(H *mathx.Matrix, z []float64, R *mathx.Matrix) error {
	hx, err := H.MulVec(f.X)
	if err != nil {
		return fmt.Errorf("kalman: update innovation: %w", err)
	}
	innov := make([]float64, len(z))
	for i := range z {
		innov[i] = z[i] - hx[i]
	}
	ph, err := f.P.Mul(H.Transpose())
	if err != nil {
		return err
	}
	hph, err := H.Mul(ph)
	if err != nil {
		return err
	}
	s, err := hph.Add(R)
	if err != nil {
		return err
	}
	sInv, err := s.Inverse()
	if err != nil {
		return fmt.Errorf("kalman: innovation covariance singular: %w", err)
	}
	k, err := ph.Mul(sInv)
	if err != nil {
		return err
	}
	kv, err := k.MulVec(innov)
	if err != nil {
		return err
	}
	for i := range f.X {
		f.X[i] += kv[i]
	}
	kh, err := k.Mul(H)
	if err != nil {
		return err
	}
	ikh, err := mathx.Identity(len(f.X)).Sub(kh)
	if err != nil {
		return err
	}
	f.P, err = ikh.Mul(f.P)
	if err != nil {
		return err
	}
	f.P.Symmetrize()
	return nil
}
