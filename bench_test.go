// Package bench is the benchmark harness of the SoundBoost reproduction:
// one benchmark per paper table/figure (regenerating its data at the quick
// experiment scale) plus micro-benchmarks for the pipeline's hot paths.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The full paper-scale tables are produced by cmd/benchtab instead, where
// wall-clock is expected to be minutes:
//
//	go run ./cmd/benchtab -scale paper -run all
package bench

import (
	"runtime"
	"sync"
	"testing"

	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/experiments"
	"soundboost/internal/mathx"
	"soundboost/internal/parallel"
	"soundboost/internal/sim"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
	labErr  error
)

// benchLab builds the shared quick-scale lab once.
func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	labOnce.Do(func() {
		lab, labErr = experiments.NewLab(experiments.QuickScale())
	})
	if labErr != nil {
		b.Fatalf("lab: %v", labErr)
	}
	return lab
}

// BenchmarkFig2SpectrumGroups regenerates the Fig. 2 spectrum and
// amplitude-vs-acceleration correlation data.
func BenchmarkFig2SpectrumGroups(b *testing.B) {
	scale := experiments.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2(scale)
		if err != nil {
			b.Fatal(err)
		}
		if r.GroupPeaks["aero"] <= r.GroupPeaks["gap"] {
			b.Fatal("aero group not dominant")
		}
	}
}

// BenchmarkFig3Augmentation regenerates the time-shift augmentation demo.
func BenchmarkFig3Augmentation(b *testing.B) {
	scale := experiments.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(scale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Augmentation runs the full Tab. I augmentation sweep.
func BenchmarkTable1Augmentation(b *testing.B) {
	scale := experiments.QuickScale()
	scale.Epochs = 25
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1(scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatal("incomplete sweep")
		}
	}
}

// BenchmarkFreqImportance runs the §IV-A counterfactual band-removal
// analysis.
func BenchmarkFreqImportance(b *testing.B) {
	l := benchLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.RunFrequencyImportance(l)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("incomplete analysis")
		}
	}
}

// BenchmarkIMUAttackDetection runs the §IV-B IMU biasing experiment.
func BenchmarkIMUAttackDetection(b *testing.B) {
	l := benchLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunIMUExperiment(l, nil)
		if err != nil {
			b.Fatal(err)
		}
		if r.AttackFlights == 0 {
			b.Fatal("no attack flights")
		}
	}
}

// BenchmarkFig6Residuals regenerates the residual-distribution comparison.
func BenchmarkFig6Residuals(b *testing.B) {
	l := benchLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2GPSDetection runs the Tab. II detector comparison.
func BenchmarkTable2GPSDetection(b *testing.B) {
	l := benchLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2(l, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 7 {
			b.Fatal("incomplete table")
		}
	}
}

// BenchmarkFig7Trace regenerates the Fig. 7 estimation trace.
func BenchmarkFig7Trace(b *testing.B) {
	l := benchLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Adversarial runs the Tab. III phase-synchronised sound
// attack grid.
func BenchmarkTable3Adversarial(b *testing.B) {
	l := benchLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3(l, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Cells) != 32 {
			b.Fatal("incomplete grid")
		}
	}
}

// BenchmarkEndToEndRCA runs the full two-stage pipeline over a mixed set.
func BenchmarkEndToEndRCA(b *testing.B) {
	l := benchLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEndToEndRCA(l, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks for the pipeline's hot paths.

func quickFlight(b *testing.B) *dataset.Flight {
	b.Helper()
	cfg := dataset.DefaultGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 10}, 7)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	f, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkFlightSimulation measures full flight generation (dynamics +
// sensors + acoustics) per 10-second flight.
func BenchmarkFlightSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		quickFlight(b)
	}
}

// BenchmarkSignatureExtraction measures per-flight signature generation.
func BenchmarkSignatureExtraction(b *testing.B) {
	l := benchLab(b)
	f := quickFlight(b)
	sig := l.Model.Config().Signature
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := soundboost.NewExtractor(f.Audio, sig)
		if err != nil {
			b.Fatal(err)
		}
		for _, t0 := range ex.WindowStarts(sig.WindowSeconds) {
			ex.Features(t0, sig.WindowSeconds)
		}
	}
}

// benchBuildWindows measures the per-flight window-building fan-out under
// a fixed worker count (1 = the serial reference path).
func benchBuildWindows(b *testing.B, workers int) {
	l := benchLab(b)
	f := quickFlight(b)
	sig := l.Model.Config().Signature
	prev := parallel.DefaultWorkers()
	parallel.SetDefaultWorkers(workers)
	defer parallel.SetDefaultWorkers(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		windows, err := soundboost.BuildWindows(f, sig, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(windows) == 0 {
			b.Fatal("no windows")
		}
	}
}

// BenchmarkBuildWindowsSerial is the workers=1 reference.
func BenchmarkBuildWindowsSerial(b *testing.B) { benchBuildWindows(b, 1) }

// BenchmarkBuildWindowsParallel fans windows out over all cores; on a
// multi-core host the speedup over the serial variant tracks the core
// count (window extraction dominates the pipeline).
func BenchmarkBuildWindowsParallel(b *testing.B) { benchBuildWindows(b, runtime.GOMAXPROCS(0)) }

// BenchmarkModelPredict measures one signature -> acceleration inference.
func BenchmarkModelPredict(b *testing.B) {
	l := benchLab(b)
	f := quickFlight(b)
	windows, err := soundboost.BuildWindows(f, l.Model.Config().Signature, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	if len(windows) == 0 {
		b.Fatal("no windows")
	}
	feat := windows[0].Features
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Model.Predict(feat)
	}
}

// BenchmarkIMUDetectFlight measures the stage-1 RCA cost per flight.
func BenchmarkIMUDetectFlight(b *testing.B) {
	l := benchLab(b)
	f := quickFlight(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.IMUDetector.Detect(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPSDetectFlight measures the stage-2 RCA cost per flight.
func BenchmarkGPSDetectFlight(b *testing.B) {
	l := benchLab(b)
	f := quickFlight(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.GPSAudioIMU.Detect(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKFAblation compares the GPS-stage design-choice variants
// (alignment, bias tracking, adaptive trust) called out in DESIGN.md.
func BenchmarkKFAblation(b *testing.B) {
	l := benchLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunKFAblation(l, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 5 {
			b.Fatal("incomplete ablation")
		}
	}
}
