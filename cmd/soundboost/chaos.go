package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"soundboost/api"
	"soundboost/internal/chaos"
	"soundboost/internal/dataset"
	"soundboost/internal/httpretry"
	"soundboost/internal/leakcheck"
	"soundboost/internal/obs"
	"soundboost/internal/server"
	"soundboost/internal/stream"
)

// runChaos is the deterministic fault-injection soak: it hosts the RCA
// service in-process, then drives one streaming session per chaos
// profile — message drops, duplication, reordering, payload corruption,
// stuck-at sensors, clock skew, mid-flight truncation, an engine-killing
// poison pill, and a fully hostile HTTP transport — all scheduled from
// one seed, and asserts the robustness contract:
//
//   - determinism: the same -seed produces byte-identical stdout (the
//     smoke script runs the soak twice and diffs);
//   - accounting: every injected fault is visible in the obs metrics —
//     per-profile exact reconciliations (injected NaNs vs dropped rows,
//     injected drops vs messages the engine never saw) plus
//     injected-vs-chaos.* counter equality for every kind;
//   - isolation: the poisoned session fails alone; the control session's
//     verdict stays byte-identical to the offline analyzer's;
//   - liveness: no goroutine outlives the soak (hand-rolled stack-diff
//     leak check), and no session sheds a single bus message (shed
//     would make the accounting unfalsifiable).
//
// Faulted verdicts either match the clean verdict byte-for-byte
// ("clean-equivalent": the detector absorbed the faults) or are printed
// with the degradation reasons derived from what was injected.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	var (
		flightPath = fs.String("flight", "", "flight to soak with (.sbf)")
		seed       = fs.Int64("seed", 42, "master seed for every fault schedule")
		sessions   = fs.Int("sessions", 0, "number of chaos sessions (0 = all profiles once)")
		chunkSec   = fs.Float64("chunk", 2, "flight seconds per frames request")
		journalDir = fs.String("journal", "", "exercise the session journal in this directory (empty = off)")
	)
	af := addAnalyzerFlags(fs)
	rt := addRuntimeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rt.apply(); err != nil {
		return err
	}
	if *flightPath == "" {
		return fmt.Errorf("-flight is required")
	}
	analyzer, err := af.load()
	if err != nil {
		return err
	}
	flight, err := dataset.LoadFile(*flightPath)
	if err != nil {
		return err
	}
	obs.Enable() // the soak's accounting reads the obs registry

	// The clean verdict every chaos verdict is measured against. Sessions
	// carry per-profile labels, so the flight name is blanked on both
	// sides — the comparison is about the analysis, not the label.
	clean, err := analyzer.Analyze(flight)
	if err != nil {
		return err
	}
	cleanReport := api.ReportFromCore(clean)
	cleanReport.Flight = ""
	cleanWire, err := json.Marshal(cleanReport)
	if err != nil {
		return err
	}

	profiles := chaosProfiles(*seed)
	if *sessions > 0 && *sessions < len(profiles) {
		profiles = profiles[:*sessions]
	}

	baseline := leakcheck.Snapshot()

	// In-process service on a loopback port: the soak exercises the real
	// HTTP plane, not handler calls. Message-plane injectors are handed
	// to sessions by flight label, registered just before each create —
	// sessions are created sequentially, so the mapping is unambiguous.
	injectors := make(map[string]*chaos.Injector)
	svc, err := server.New(analyzer, server.Config{
		MaxSessions: len(profiles) + 1,
		JournalDir:  *journalDir,
		SessionInjector: func(id, flightLabel string) *chaos.Injector {
			return injectors[flightLabel] // nil (no faults) for unknown labels
		},
		Logf: func(format string, a ...any) { fmt.Fprintf(os.Stderr, "serve: "+format+"\n", a...) },
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	fmt.Printf("chaos soak: seed %d, %d profile(s), flight %q\n", *seed, len(profiles), flight.Name)
	failures := 0
	for i, p := range profiles {
		label := fmt.Sprintf("chaos-%02d-%s", i, p.name)
		if p.msg != nil {
			// Hand the profile's injector to the session about to be
			// created under this label.
			injectors[label] = p.msg
		}
		res := runChaosProfile(base, flight, p, i, label, *chunkSec, cleanWire)
		for _, line := range res.lines {
			fmt.Println(line)
		}
		if !res.ok {
			failures++
		}
	}

	// Tear the service down and prove nothing leaked.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("listener: %w", err)
	}
	<-serveDone
	if extra := leakcheck.Wait(baseline, 10*time.Second); len(extra) != 0 {
		fmt.Printf("FAIL goroutine-leak: %d goroutine(s) survived the soak\n", len(extra))
		for _, g := range extra {
			fmt.Fprintln(os.Stderr, g+"\n")
		}
		failures++
	} else {
		fmt.Println("ok goroutine-leak: all goroutines accounted for")
	}

	// Process-wide chaos.* counters must equal the sum of every
	// injector's exact counts — the obs plane lost nothing.
	fmt.Print(reconcileChaosCounters(profiles, injectorsOf(profiles)))
	if failures > 0 {
		return fmt.Errorf("chaos soak: %d check(s) failed", failures)
	}
	fmt.Println("chaos soak: OK")
	return nil
}

// chaosProfile is one session's schedule plus the assertions it earns.
type chaosProfile struct {
	name string
	// msg is the message-plane schedule (nil = clean); built once so the
	// injector's exact counts survive for the final reconciliation.
	msg *chaos.Injector
	// http is the client-transport schedule (nil = clean).
	http *chaos.HTTPConfig
	// expectFailed marks the profile whose session must die (poison) —
	// and whose death must not disturb anyone else.
	expectFailed bool
	// exact names an observed-side counter reconciliation to run, keyed
	// by profile (see runChaosProfile).
	exact string
}

// noSleep keeps the soak wall-clock-free: injected latency is counted,
// not waited for.
func noSleep(time.Duration) {}

// chaosProfiles builds the fixed battery. Every schedule derives its
// seed from the master seed plus a distinct offset, so one -seed pins
// the whole battery.
func chaosProfiles(seed int64) []*chaosProfile {
	inj := func(off int64, cfg chaos.Config) *chaos.Injector {
		cfg.Seed = seed + off
		cfg.Sleep = noSleep
		return chaos.NewInjector(cfg, stream.CorruptPayload)
	}
	return []*chaosProfile{
		{name: "control"},
		{name: "lossy-link", exact: "received", msg: inj(1, chaos.Config{
			PerTopic: map[string]chaos.Rates{
				stream.TopicIMU:   {Drop: 0.05},
				stream.TopicGPS:   {Drop: 0.05},
				stream.TopicAudio: {Drop: 0.02},
			},
		})},
		{name: "dup-reorder", exact: "received", msg: inj(2, chaos.Config{
			PerTopic: map[string]chaos.Rates{
				stream.TopicIMU: {Dup: 0.04, Reorder: 0.04},
				stream.TopicGPS: {Dup: 0.04, Reorder: 0.04},
			},
		})},
		{name: "nan-telemetry", exact: "nan-telemetry", msg: inj(3, chaos.Config{
			PerTopic: map[string]chaos.Rates{
				stream.TopicIMU: {NaN: 0.05},
				stream.TopicGPS: {NaN: 0.05},
			},
		})},
		{name: "nan-audio", exact: "nan-audio", msg: inj(4, chaos.Config{
			PerTopic: map[string]chaos.Rates{stream.TopicAudio: {NaN: 0.1}},
		})},
		{name: "corrupt-audio", msg: inj(5, chaos.Config{
			PerTopic: map[string]chaos.Rates{
				stream.TopicAudio: {Truncate: 0.02, BitFlip: 0.02, Freeze: 0.01},
			},
		})},
		{name: "clock-skew", msg: inj(6, chaos.Config{
			Default:       chaos.Rates{},
			SkewPerSecond: 0.002,
			JitterSeconds: 0.001,
			PerTopic: map[string]chaos.Rates{
				stream.TopicIMU: {}, stream.TopicGPS: {},
			},
		})},
		{name: "mid-flight-cutoff", exact: "received", msg: inj(7, chaos.Config{
			CutoffSeconds: 12,
		})},
		{name: "poison-pill", expectFailed: true, msg: inj(8, chaos.Config{
			PoisonAfter: 500,
		})},
		// Rates are deliberately brutal: the data path is only ~a dozen
		// requests, so mild rates leave whole fault kinds unexercised.
		// The 20-attempt retry budget still converges at these odds.
		{name: "hostile-http", http: &chaos.HTTPConfig{
			Seed:             seed + 9,
			ResetRate:        0.25,
			DropResponseRate: 0.15,
			Error5xxRate:     0.20,
			SlowRate:         0.15,
			LatencyRate:      0.15,
			Latency:          time.Millisecond,
			Sleep:            noSleep,
		}},
	}
}

// injectorsOf collects the non-nil message injectors for reconciliation.
func injectorsOf(profiles []*chaosProfile) []*chaos.Injector {
	var out []*chaos.Injector
	for _, p := range profiles {
		if p.msg != nil {
			out = append(out, p.msg)
		}
	}
	return out
}

// streamDelta snapshots the observed-side stream counters.
type streamDelta struct {
	frames, imu, gps, telemetryNaN, nonFinite int64
	panicked                                  int64
}

func readStreamCounters() streamDelta {
	c := func(name string) int64 { return obs.Default.Counter(name).Value() }
	return streamDelta{
		frames:       c("stream.frames"),
		imu:          c("stream.telemetry.imu"),
		gps:          c("stream.telemetry.gps"),
		telemetryNaN: c("stream.telemetry.nan_dropped"),
		nonFinite:    c("stream.audio.nonfinite_samples"),
		panicked:     c("server.sessions.panicked"),
	}
}

func (a streamDelta) sub(b streamDelta) streamDelta {
	return streamDelta{
		frames:       a.frames - b.frames,
		imu:          a.imu - b.imu,
		gps:          a.gps - b.gps,
		telemetryNaN: a.telemetryNaN - b.telemetryNaN,
		nonFinite:    a.nonFinite - b.nonFinite,
		panicked:     a.panicked - b.panicked,
	}
}

// chaosResult is one profile's outcome, rendered as deterministic lines.
type chaosResult struct {
	ok    bool
	lines []string
}

func (r *chaosResult) failf(format string, a ...any) {
	r.ok = false
	r.lines = append(r.lines, fmt.Sprintf("FAIL "+format, a...))
}

func (r *chaosResult) logf(format string, a ...any) {
	r.lines = append(r.lines, fmt.Sprintf(format, a...))
}

// runChaosProfile drives one session through one schedule and checks its
// contract.
func runChaosProfile(base string, flight *dataset.Flight, p *chaosProfile, idx int, label string, chunkSec float64, cleanWire []byte) *chaosResult {
	res := &chaosResult{ok: true}
	before := readStreamCounters()

	hc := http.DefaultClient
	var tr *chaos.Transport
	if p.http != nil {
		tr = chaos.NewTransport(nil, *p.http)
		hc = &http.Client{Transport: tr}
	}
	// Generous retry budget: the hostile-http profile must converge, and
	// determinism cannot depend on how many times it has to try. Sleeps
	// are disabled — backoff is counted by the PRNG, not waited out.
	client := httpretry.New(hc, 20, time.Millisecond, int64(idx)+1)
	client.Sleep = noSleep
	// Status polls bypass the fault schedule: their count depends on
	// engine drain timing, and nondeterministic poll traffic would drag
	// the transport's PRNG — and its injected counts — along with it.
	// Faults hit the data path (create + frames + report), where they
	// prove something.
	poll := httpretry.New(http.DefaultClient, 20, time.Millisecond, int64(idx)+101)
	poll.Sleep = noSleep

	outcome, err := driveChaosSession(client, poll, base, flight, label, chunkSec, p)
	if err != nil {
		res.failf("%s: %v", label, err)
		return res
	}
	after := readStreamCounters()
	d := after.sub(before)
	counts := map[chaos.Kind]int64{}
	if p.msg != nil {
		counts = p.msg.Counts()
	}

	// Render the verdict line: profile, injected fault counts (stable
	// order), outcome.
	faults := ""
	var total int64
	for _, k := range chaos.Kinds {
		if counts[k] > 0 {
			faults += fmt.Sprintf(" %s=%d", k, counts[k])
			total += counts[k]
		}
	}
	if faults == "" {
		faults = " none"
	}
	res.logf("%s: injected%s", label, faults)
	if tr != nil {
		hcounts := tr.Counts()
		line := ""
		for _, k := range chaos.HTTPKinds {
			line += fmt.Sprintf(" %s=%d", k, hcounts[k])
		}
		res.logf("%s: transport%s", label, line)
	}

	switch {
	case p.expectFailed:
		if outcome.state != api.SessionFailed {
			res.failf("%s: expected a failed session, got state %q", label, outcome.state)
		} else {
			res.logf("%s: session failed in isolation (cause: %s)", label, outcome.failCause)
		}
		if d.panicked != 1 {
			res.failf("%s: sessions.panicked delta = %d, want 1", label, d.panicked)
		}
	case outcome.state != api.SessionDone:
		res.failf("%s: session ended %q, want done", label, outcome.state)
	default:
		if string(outcome.report) == string(cleanWire) {
			res.logf("%s: verdict clean-equivalent", label)
		} else if total == 0 && p.http == nil {
			res.failf("%s: verdict diverged with no injected faults:\n  clean: %s\n  chaos: %s",
				label, cleanWire, outcome.report)
		} else if p.http != nil && p.msg == nil {
			// HTTP faults never touch payloads; retries + sequence-numbered
			// idempotency must make the transport chaos invisible.
			res.failf("%s: verdict diverged under HTTP-only faults:\n  clean: %s\n  chaos: %s",
				label, cleanWire, outcome.report)
		} else {
			res.logf("%s: verdict degraded (%s) by %s", label, degradationReasons(counts), outcome.report)
		}
	}
	if outcome.shed != 0 {
		res.failf("%s: %d bus message(s) shed — raise the session buffer, accounting is void", label, outcome.shed)
	}

	// Observed-side exact reconciliations.
	switch p.exact {
	case "nan-telemetry":
		if want := counts[chaos.KindCorruptNaN]; d.telemetryNaN != want {
			res.failf("%s: telemetry.nan_dropped delta = %d, want %d (every injected NaN row must be dropped)",
				label, d.telemetryNaN, want)
		} else {
			res.logf("%s: accounting exact: %d injected NaN row(s) == %d dropped", label, want, d.telemetryNaN)
		}
	case "nan-audio":
		// The audio mutator poisons exactly one sample per injected fault.
		if want := counts[chaos.KindCorruptNaN]; d.nonFinite != want {
			res.failf("%s: audio.nonfinite_samples delta = %d, want %d", label, d.nonFinite, want)
		} else {
			res.logf("%s: accounting exact: %d injected NaN sample(s) == %d zeroed", label, want, d.nonFinite)
		}
	case "received":
		offered := outcome.offered
		want := offered - counts[chaos.KindDrop] - counts[chaos.KindCutoff] + counts[chaos.KindDup]
		got := d.frames + d.imu + d.gps
		if got != want {
			res.failf("%s: engine received %d message(s), want %d (offered %d - dropped %d - cutoff %d + dup %d)",
				label, got, want, offered, counts[chaos.KindDrop], counts[chaos.KindCutoff], counts[chaos.KindDup])
		} else {
			res.logf("%s: accounting exact: received %d == offered %d - lost %d + dup %d",
				label, got, offered, counts[chaos.KindDrop]+counts[chaos.KindCutoff], counts[chaos.KindDup])
		}
	}
	return res
}

// sessionOutcome is what one driven session ended as.
type sessionOutcome struct {
	state     string
	failCause string
	report    []byte // canonical JSON of the api.Report (done only)
	shed      int
	offered   int64 // messages offered to the injector (pre-fault)
}

// driveChaosSession streams the flight through one chaos session and
// waits for a terminal state. client (possibly riding a chaos transport)
// carries the data path; poll is a clean client for status waiting.
func driveChaosSession(client, poll *httpretry.Client, base string, flight *dataset.Flight, label string, chunkSec float64, p *chaosProfile) (sessionOutcome, error) {
	var out sessionOutcome
	var created api.SessionResponse
	body, err := json.Marshal(api.SessionRequest{
		Flight:       label,
		SampleRateHz: flight.Audio.SampleRate,
		Buffer:       1 << 16, // shed-free: accounting requires zero backpressure loss
	})
	if err != nil {
		return out, err
	}
	if err := client.Do("POST", base+"/v1/sessions", body, &created); err != nil {
		return out, err
	}
	sessURL := base + "/v1/sessions/" + created.ID

	reqs, err := api.ChunkFlight(flight, 0.05, chunkSec)
	if err != nil {
		return out, err
	}
	for i := range reqs {
		out.offered += int64(len(reqs[i].Audio) + len(reqs[i].IMU) + len(reqs[i].GPS))
	}
	for i, r := range reqs {
		raw, err := json.Marshal(r)
		if err != nil {
			return out, err
		}
		var resp api.FramesResponse
		if err := client.Do("POST", sessURL+"/frames", raw, &resp); err != nil {
			if p.expectFailed {
				break // the poisoned engine died under us — expected
			}
			return out, fmt.Errorf("frames %d/%d: %w", i+1, len(reqs), err)
		}
	}

	// Wait for the terminal state (done or failed); polls are not
	// printed, so their count cannot break output determinism.
	var status api.SessionStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		if err := poll.Do("GET", sessURL+"/status", nil, &status); err != nil {
			return out, err
		}
		if status.State == api.SessionDone || status.State == api.SessionFailed {
			break
		}
		if time.Now().After(deadline) {
			return out, fmt.Errorf("session %s stuck in state %q", created.ID, status.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	out.state = status.State
	out.failCause = status.FailCause
	out.shed = status.Shed
	if status.State == api.SessionDone {
		var report api.Report
		if err := client.Do("GET", sessURL+"/report", nil, &report); err != nil {
			return out, err
		}
		report.Flight = "" // per-profile label; the comparison is on the analysis
		if out.report, err = json.Marshal(report); err != nil {
			return out, err
		}
	}
	return out, nil
}

// degradationReasons names the injected fault families, in stable order
// — the explicit reason a verdict is allowed to differ from clean.
func degradationReasons(counts map[chaos.Kind]int64) string {
	names := map[chaos.Kind]string{
		chaos.KindDrop:       "messages dropped",
		chaos.KindDup:        "messages duplicated",
		chaos.KindReorder:    "messages reordered",
		chaos.KindCorruptNaN: "payloads NaN-poisoned",
		chaos.KindTruncate:   "frames truncated",
		chaos.KindBitFlip:    "bits flipped",
		chaos.KindFreeze:     "sensors frozen",
		chaos.KindRetime:     "clocks skewed",
		chaos.KindLatency:    "bursty latency",
		chaos.KindCutoff:     "stream cut mid-flight",
		chaos.KindPoison:     "engine poisoned",
	}
	reason := ""
	for _, k := range chaos.Kinds {
		if counts[k] > 0 {
			if reason != "" {
				reason += ", "
			}
			reason += names[k]
		}
	}
	if reason == "" {
		reason = "unknown"
	}
	return reason
}

// reconcileChaosCounters checks that the process-wide chaos.injected.*
// counters equal the sum of every injector's exact per-kind counts (plus
// the HTTP transports'): no injected fault escaped the metrics.
func reconcileChaosCounters(profiles []*chaosProfile, injectors []*chaos.Injector) string {
	want := map[chaos.Kind]int64{}
	for _, in := range injectors {
		for k, v := range in.Counts() {
			want[k] += v
		}
	}
	// HTTP transports are owned by runChaosProfile's clients; their
	// injected counts are already process-wide in obs, so reconcile only
	// the message plane exactly and report the HTTP counters as-is.
	out := ""
	ok := true
	for _, k := range chaos.Kinds {
		got := obs.Default.Counter("chaos.injected." + string(k)).Value()
		if got != want[k] {
			out += fmt.Sprintf("FAIL chaos.injected.%s = %d, want %d\n", k, got, want[k])
			ok = false
		}
	}
	httpTotal := int64(0)
	for _, k := range chaos.HTTPKinds {
		v := obs.Default.Counter("chaos.injected." + string(k)).Value()
		if v > 0 {
			out += fmt.Sprintf("chaos.injected.%s = %d\n", k, v)
			httpTotal += v
		}
	}
	hostile := false
	for _, p := range profiles {
		if p.http != nil {
			hostile = true
		}
	}
	if hostile && httpTotal == 0 {
		out += "FAIL hostile-http profile ran but no HTTP faults were injected\n"
		ok = false
	}
	if ok {
		out += "ok chaos accounting: every injected fault is in the obs registry\n"
	}
	return out
}
