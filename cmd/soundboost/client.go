package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"soundboost/api"
)

// retryClient is the CLI's fault-tolerant HTTP client: requests are
// retried with exponential backoff and seeded jitter on transport errors
// and on retryable statuses (429 and the gateway-ish 502/503/504), a
// server-supplied Retry-After overrides the computed backoff, and bodies
// are held as []byte so every resend is byte-identical. A plain 500 is
// never retried — the server uses it for permanent outcomes
// (session_failed), where a retry can only waste the budget.
//
// Retrying a frames post is safe because chunks carry sequence numbers:
// a resend whose original ack was lost comes back Duplicate, not
// double-published.
type retryClient struct {
	hc      *http.Client
	retries int
	base    time.Duration
	max     time.Duration
	rng     *rand.Rand
	sleep   func(time.Duration)
	logf    func(format string, a ...any)
}

// newRetryClient builds a client retrying up to retries times with
// backoff starting at base (jittered, capped at 30×base). seed makes the
// jitter sequence reproducible for the chaos soak.
func newRetryClient(hc *http.Client, retries int, base time.Duration, seed int64) *retryClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	if retries < 0 {
		retries = 0
	}
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	return &retryClient{
		hc:      hc,
		retries: retries,
		base:    base,
		max:     30 * base,
		rng:     rand.New(rand.NewSource(seed)),
		sleep:   time.Sleep,
		logf:    func(string, ...any) {},
	}
}

// retryableStatus reports whether a status is worth retrying.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do round-trips one JSON request with retries. body may be nil; out may
// be nil to discard the response.
func (c *retryClient) do(method, url string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		retryAfter, err := c.attempt(method, url, body, out)
		if err == nil {
			return nil
		}
		if retryAfter < 0 || attempt >= c.retries {
			if attempt > 0 {
				return fmt.Errorf("%w (after %d attempts)", err, attempt+1)
			}
			return err
		}
		delay := c.backoff(attempt)
		if retryAfter > 0 {
			delay = retryAfter
		}
		c.logf("retry %d/%d for %s %s in %s: %v", attempt+1, c.retries, method, url, delay, err)
		c.sleep(delay)
	}
}

// attempt performs one round trip. The returned duration encodes the
// retry decision: -1 permanent failure, 0 retryable with computed
// backoff, >0 retryable honoring the server's Retry-After.
func (c *retryClient) attempt(method, url string, body []byte, out any) (time.Duration, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return -1, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err // transport failure: connection reset, refused, dropped response
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("%s: reading response: %w", url, err)
	}
	if resp.StatusCode/100 == 2 {
		if out == nil {
			return -1, nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return -1, fmt.Errorf("%s: %w", url, err)
		}
		return -1, nil
	}
	apiErr := api.Error{Code: fmt.Sprintf("http_%d", resp.StatusCode), Error: string(raw)}
	var decoded api.Error
	if json.Unmarshal(raw, &decoded) == nil && decoded.Error != "" {
		apiErr = decoded
	}
	err = fmt.Errorf("%s: %s (%s)", url, apiErr.Error, apiErr.Code)
	if !retryableStatus(resp.StatusCode) {
		return -1, err
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
			return time.Duration(secs) * time.Second, err
		}
	}
	return 0, err
}

// backoff computes the jittered exponential delay for one attempt:
// half the window deterministic, half uniform random, capped at max.
func (c *retryClient) backoff(attempt int) time.Duration {
	d := c.base << uint(attempt)
	if d > c.max || d <= 0 {
		d = c.max
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}
