// Command soundboost trains the acoustic model and runs post-incident RCA
// over recorded flights.
//
// Train a model from a directory of benign flights; -triage also fits
// the KNN screening tier from the same corpus (attack flights allowed
// then — they only label triage windows):
//
//	soundboost train -flights flights/ -model model.json
//	soundboost train -flights flights/ -model model.json -triage triage.json
//
// Calibrate the detectors once and save the full analyzer; -triage
// attaches the screening tier, enforces the zero verdict-flip
// guarantee over the calibration corpus, and embeds the tier in the
// saved analyzer:
//
//	soundboost calibrate -model model.json -calib flights/ -out analyzer.json
//	soundboost calibrate -model model.json -calib flights/ -out analyzer.json -triage triage.json
//
// Run the two-stage RCA over a flight, either from a saved analyzer or by
// calibrating on the fly:
//
//	soundboost rca -analyzer analyzer.json -flight incident.sbf
//	soundboost rca -model model.json -calib flights/ -flight incident.sbf
//
// Replay a recorded flight through the mavbus as live telemetry streams
// and run the online RCA engine over it in (scaled) real time:
//
//	soundboost live -analyzer analyzer.json -flight incident.sbf -speed 10
//
// Host the analyzer as a multi-session HTTP service (the /v1 API of the
// api package: batch uploads plus concurrent streaming sessions), and
// push a recorded flight at it from the client side:
//
//	soundboost serve -analyzer analyzer.json -addr 127.0.0.1:8713
//	soundboost push -addr http://127.0.0.1:8713 -flight incident.sbf -mode batch
//	soundboost push -addr http://127.0.0.1:8713 -flight incident.sbf -mode session
//
// Shard the service across several serve replicas behind one
// consistent-hash gateway. The gateway probes replica health, routes
// each session to its ring-assigned replica, and migrates sessions off
// draining or dead replicas by replaying their journals onto a
// successor — clients just resend the last unacknowledged chunk:
//
//	soundboost serve -analyzer analyzer.json -addr :9001 -journal j1/
//	soundboost serve -analyzer analyzer.json -addr :9002 -journal j2/
//	soundboost gateway -addr :8712 -replica r1=http://127.0.0.1:9001=j1 -replica r2=http://127.0.0.1:9002=j2
//
// Soak the whole service under deterministic fault injection — message
// drops, duplication, reordering, NaN/bit-flip corruption, clock skew,
// mid-flight cutoff, an engine-killing poison pill and a hostile HTTP
// transport — asserting that every fault is accounted for in the
// metrics, that verdicts are reproducible from the seed, and that no
// goroutine leaks:
//
//	soundboost chaos -analyzer analyzer.json -flight incident.sbf -seed 42
//
// Sweep a parameter grid — detector margins and KF variants, chunk and
// frame sizes, attack families and intensities — through live streaming
// sessions, emitting schema-versioned JSONL records, a CSV summary, and
// a confusion-matrix/ROC rollup. Self-hosted by default (one in-process
// server per derived analyzer); -addr targets a running serve instance
// instead. A fixed -seed makes the whole sweep byte-identical:
//
//	soundboost sweep -analyzer analyzer.json -margins 1.0,1.1,1.3 -attacks benign,gps-drift -jsonl sweep.jsonl
//	soundboost sweep -addr http://127.0.0.1:8713 -chunks 1,2,4 -attacks benign,gps-drift,imu-dos
//
// Analyzer-consuming subcommands (rca, live, serve, chaos, sweep)
// accept -no-triage to detach an embedded screening tier and force the
// full pipeline on every flight; sweep additionally takes -triage
// on,off to A/B the tier as a grid axis.
//
// Every subcommand accepts -debug-addr to enable the observability
// layer and serve live pipeline metrics (/debug/metrics) and pprof
// (/debug/pprof/) while it runs:
//
//	soundboost rca -debug-addr 127.0.0.1:8080 -flight incident.sbf ...
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"soundboost/internal/acoustics"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/mavbus"
	"soundboost/internal/sim"
	"soundboost/internal/stream"
	"soundboost/internal/triage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "soundboost:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: soundboost <train|calibrate|rca|live|serve|gateway|push|chaos|sweep> [flags]")
	}
	switch args[0] {
	case "train":
		return runTrain(args[1:])
	case "calibrate":
		return runCalibrate(args[1:])
	case "rca":
		return runRCA(args[1:])
	case "live":
		return runLive(args[1:])
	case "serve":
		return runServe(args[1:])
	case "gateway":
		return runGateway(args[1:])
	case "push":
		return runPush(args[1:])
	case "chaos":
		return runChaos(args[1:])
	case "sweep":
		return runSweep(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want train, calibrate, rca, live, serve, gateway, push, chaos or sweep)", args[0])
	}
}

func loadFlightDir(dir string) ([]*dataset.Flight, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".sbf") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var flights []*dataset.Flight
	for _, n := range names {
		f, err := dataset.LoadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", n, err)
		}
		flights = append(flights, f)
	}
	if len(flights) == 0 {
		return nil, fmt.Errorf("no .sbf flights in %s", dir)
	}
	return flights, nil
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	var (
		flightDir  = fs.String("flights", "flights", "directory of benign training flights")
		modelPath  = fs.String("model", "model.json", "output model path")
		triagePath = fs.String("triage", "", "also train the KNN triage tier and write it to this path (attack flights then label the corpus instead of being rejected)")
		hidden     = fs.Int("hidden", 64, "regressor width")
		epochs     = fs.Int("epochs", 60, "training epochs")
		augment    = fs.Float64("augment", 5, "time-shift augmentation factor (0 = none)")
	)
	rt := addRuntimeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rt.apply(); err != nil {
		return err
	}
	allFlights, err := loadFlightDir(*flightDir)
	if err != nil {
		return err
	}
	// The regressor learns the benign acoustic→accel mapping, so it only
	// ever trains on benign flights. Without -triage any attack flight in
	// the directory is a mistake; with -triage the attacks are the labeled
	// anomalous half of the screening corpus.
	var flights []*dataset.Flight
	for _, f := range allFlights {
		if f.Scenario.IsAttack() {
			if *triagePath == "" {
				return fmt.Errorf("flight %q is an attack flight; train on benign flights only (or pass -triage)", f.Name)
			}
			continue
		}
		flights = append(flights, f)
	}
	if len(flights) == 0 {
		return fmt.Errorf("no benign flights in %s", *flightDir)
	}
	// Derive the signature layout from the first recording's rate: assume
	// the default frequency plan scaled into its Nyquist range.
	sample := flights[0].Audio.SampleRate
	synth := deriveSynth(sample)
	sigCfg := soundboost.DefaultSignatureConfig(synth)
	mapCfg := soundboost.DefaultMappingConfig(sigCfg)
	mapCfg.Hidden = *hidden
	mapCfg.Train.Epochs = *epochs
	mapCfg.Train.Verbose = true
	mapCfg.Train.Logf = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	if *augment > 0 {
		mapCfg.AugmentFactors = []float64{*augment}
	} else {
		mapCfg.AugmentFactors = nil
	}

	nVal := len(flights) / 6
	train := flights[:len(flights)-nVal]
	val := flights[len(flights)-nVal:]
	fmt.Printf("training on %d flights (%d validation)\n", len(train), len(val))
	model, hist, err := soundboost.TrainModel(train, val, mapCfg)
	if err != nil {
		return err
	}
	if n := len(hist.TrainMSE); n > 0 {
		fmt.Printf("final train MSE (normalised): %.4f\n", hist.TrainMSE[n-1])
	}
	out, err := os.Create(*modelPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := model.Save(out); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", *modelPath)
	if *triagePath == "" {
		return nil
	}
	tri, err := soundboost.TrainTriage(allFlights, sigCfg, triage.Config{})
	if err != nil {
		return err
	}
	blob, err := json.Marshal(tri)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*triagePath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("triage tier written to %s (%d prototypes, k=%d)\n",
		*triagePath, tri.Prototypes(), tri.K())
	return nil
}

func runCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	var (
		modelPath  = fs.String("model", "model.json", "trained model path")
		calibDir   = fs.String("calib", "flights", "directory of benign calibration flights")
		triagePath = fs.String("triage", "", "trained triage tier to embed (from `soundboost train -triage`); verified flip-free against the calibration corpus")
		outPath    = fs.String("out", "analyzer.json", "output analyzer path")
		precision  = fs.String("precision", "", "hot-path arithmetic baked into the persisted analyzer: float64 (exact default) or float32 (fast path; thresholds calibrate under float32 features)")
	)
	rt := addRuntimeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rt.apply(); err != nil {
		return err
	}
	var opts []soundboost.AnalyzerOption
	if *precision != "" {
		p, err := soundboost.ParsePrecision(*precision)
		if err != nil {
			return err
		}
		opts = append(opts, soundboost.WithPrecision(p))
	}
	analyzer, err := buildAnalyzer(*modelPath, *calibDir, opts...)
	if err != nil {
		return err
	}
	if *triagePath != "" {
		blob, err := os.ReadFile(*triagePath)
		if err != nil {
			return err
		}
		tri := new(triage.Model)
		if err := json.Unmarshal(blob, tri); err != nil {
			return fmt.Errorf("decode triage tier %s: %w", *triagePath, err)
		}
		analyzer.Triage = tri
		// Enforce the zero verdict-flip guarantee on the calibration
		// corpus before the tier is persisted: any flight the full
		// pipeline flags must escalate, tightening the benign radius
		// until it does.
		calib, err := loadFlightDir(*calibDir)
		if err != nil {
			return err
		}
		fast, esc, err := analyzer.VerifyTriage(calib)
		if err != nil {
			return err
		}
		fmt.Printf("triage verified on %d calibration flights: %d fast-path, %d escalated\n",
			len(calib), fast, esc)
	}
	out, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := analyzer.Save(out); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("calibrated analyzer written to %s\n", *outPath)
	fmt.Printf("  IMU: KS stat threshold %.3f, sigma threshold %.3f\n",
		analyzer.IMU.StatThreshold(), analyzer.IMU.StdThreshold())
	fmt.Printf("  GPS: audio-only threshold %.3f, audio+IMU threshold %.3f\n",
		analyzer.GPSAudioOnly.Threshold(), analyzer.GPSAudioIMU.Threshold())
	return nil
}

// buildAnalyzer loads the model and calibrates detectors on a benign
// flight directory.
func buildAnalyzer(modelPath, calibDir string, opts ...soundboost.AnalyzerOption) (*soundboost.Analyzer, error) {
	mf, err := os.Open(modelPath)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	model, err := soundboost.LoadModel(mf)
	if err != nil {
		return nil, err
	}
	calib, err := loadFlightDir(calibDir)
	if err != nil {
		return nil, err
	}
	var benign []*dataset.Flight
	for _, f := range calib {
		if !f.Scenario.IsAttack() {
			benign = append(benign, f)
		}
	}
	return soundboost.NewAnalyzer(model, benign, opts...)
}

func runRCA(args []string) error {
	fs := flag.NewFlagSet("rca", flag.ContinueOnError)
	flightPath := fs.String("flight", "", "flight to analyse (.sbf)")
	af := addAnalyzerFlags(fs)
	rt := addRuntimeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rt.apply(); err != nil {
		return err
	}
	if *flightPath == "" {
		return fmt.Errorf("-flight is required")
	}
	analyzer, err := af.load()
	if err != nil {
		return err
	}
	flight, err := dataset.LoadFile(*flightPath)
	if err != nil {
		return err
	}
	report, err := analyzer.Analyze(flight)
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	if flight.Scenario.IsAttack() {
		fmt.Printf("  (ground truth: %s during [%.1f, %.1f))\n",
			flight.Scenario.Kind, flight.Scenario.Window.Start, flight.Scenario.Window.End)
	} else {
		fmt.Println("  (ground truth: benign)")
	}
	return nil
}

// runLive replays a recorded flight onto an in-process mavbus as the
// audio/IMU/GPS streams a companion computer would see, and runs the
// online engine over them. The verdict on a clean replay is identical to
// `soundboost rca` over the same file; -drop/-audio-drop inject loss to
// exercise the degraded paths.
func runLive(args []string) error {
	fs := flag.NewFlagSet("live", flag.ContinueOnError)
	var (
		flightPath = fs.String("flight", "", "flight to replay (.sbf)")
		speed      = fs.Float64("speed", 10, "replay speed factor (1 = real time, 0 = as fast as possible)")
		frameSec   = fs.Float64("frame", 0.05, "audio frame length in seconds")
		dropRate   = fs.Float64("drop", 0, "telemetry (IMU/GPS) message drop probability")
		audioDrop  = fs.Float64("audio-drop", 0, "audio frame drop probability")
		seed       = fs.Int64("seed", 1, "drop-injection seed")
		buffer     = fs.Int("buffer", 4096, "per-topic subscription buffer depth")
	)
	af := addAnalyzerFlags(fs)
	rt := addRuntimeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rt.apply(); err != nil {
		return err
	}
	if *flightPath == "" {
		return fmt.Errorf("-flight is required")
	}
	analyzer, err := af.load()
	if err != nil {
		return err
	}
	flight, err := dataset.LoadFile(*flightPath)
	if err != nil {
		return err
	}

	bus := mavbus.NewBus(0)
	eng, err := stream.New(analyzer, flight.Audio.SampleRate,
		stream.WithBuffer(*buffer),
		stream.WithFlightName(flight.Name))
	if err != nil {
		return err
	}
	if err := eng.Attach(bus); err != nil {
		return err
	}
	fmt.Printf("replaying %q (%.1f s) at %gx through %q/%q/%q...\n",
		flight.Name, flight.Duration(), *speed,
		stream.TopicAudio, stream.TopicIMU, stream.TopicGPS)
	replayErr := make(chan error, 1)
	go func() {
		replayErr <- stream.Replay(context.Background(), bus, flight, stream.ReplayConfig{
			Speed:         *speed,
			FrameSeconds:  *frameSec,
			DropRate:      *dropRate,
			AudioDropRate: *audioDrop,
			Seed:          *seed,
		})
		bus.Close()
	}()
	report, err := eng.Run(context.Background())
	if rerr := <-replayErr; rerr != nil {
		return fmt.Errorf("replay: %w", rerr)
	}
	if err != nil {
		return err
	}
	st := eng.Status()
	fmt.Printf("stream: %d windows processed, %d skipped, %d bus messages shed\n",
		st.Windows, st.Skipped, bus.Dropped())
	fmt.Print(report.String())
	if flight.Scenario.IsAttack() {
		fmt.Printf("  (ground truth: %s during [%.1f, %.1f))\n",
			flight.Scenario.Kind, flight.Scenario.Window.Start, flight.Scenario.Window.End)
	} else {
		fmt.Println("  (ground truth: benign)")
	}
	return nil
}

// deriveSynth reconstructs the acoustic frequency plan for a recording's
// sample rate: the paper layout when it fits under Nyquist, otherwise the
// proportionally scaled plan used by reduced-rate datasets.
func deriveSynth(sampleRate float64) acoustics.SynthConfig {
	c := acoustics.DefaultSynthConfig()
	c.SampleRate = sampleRate
	world := sim.DefaultWorldConfig()
	c.Blades = world.Vehicle.Blades
	c.HoverSpeed = world.Vehicle.HoverMotorSpeed()
	if c.AeroFreq >= sampleRate/2 {
		c.MechFreq = 0.225 * sampleRate
		c.AeroFreq = 0.375 * sampleRate
	}
	return c
}
