package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"soundboost/api"
	"soundboost/internal/dataset"
)

// runPush is the client side of `soundboost serve`: it sends a recorded
// flight to a running service — in one shot (POST /v1/flights) or
// chunked through a streaming session — and prints the returned verdict
// in exactly the format of `soundboost rca`, so the two outputs diff
// clean when the service is healthy. Progress goes to stderr.
func runPush(args []string) error {
	fs := flag.NewFlagSet("push", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "http://127.0.0.1:8713", "service base URL")
		flightPath = fs.String("flight", "", "flight to push (.sbf)")
		mode       = fs.String("mode", "batch", "batch (one-shot upload) or session (chunked streaming)")
		frameSec   = fs.Float64("frame", 0.05, "audio frame length in seconds (session mode)")
		chunkSec   = fs.Float64("chunk", 2, "flight seconds per frames request (session mode, 0 = single request)")
		buffer     = fs.Int("buffer", 1<<15, "server-side per-topic buffer depth (session mode)")
	)
	rt := addRuntimeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rt.apply(); err != nil {
		return err
	}
	if *flightPath == "" {
		return fmt.Errorf("-flight is required")
	}
	flight, err := dataset.LoadFile(*flightPath)
	if err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")

	var wire api.Report
	switch *mode {
	case "batch":
		wire, err = pushBatch(base, *flightPath)
	case "session":
		wire, err = pushSession(base, flight, *frameSec, *chunkSec, *buffer)
	default:
		return fmt.Errorf("unknown -mode %q (want batch or session)", *mode)
	}
	if err != nil {
		return err
	}

	report := wire.ToCore()
	fmt.Print(report.String())
	if flight.Scenario.IsAttack() {
		fmt.Printf("  (ground truth: %s during [%.1f, %.1f))\n",
			flight.Scenario.Kind, flight.Scenario.Window.Start, flight.Scenario.Window.End)
	} else {
		fmt.Println("  (ground truth: benign)")
	}
	return nil
}

// postJSON round-trips one JSON request against the service.
func postJSON(method, url string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr api.Error
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s (%s)", url, apiErr.Error, apiErr.Code)
		}
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, raw)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// pushBatch uploads the raw .sbf file for one-shot batch RCA.
func pushBatch(base, path string) (api.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return api.Report{}, err
	}
	defer f.Close()
	req, err := http.NewRequest("POST", base+"/v1/flights", f)
	if err != nil {
		return api.Report{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return api.Report{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return api.Report{}, err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr api.Error
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return api.Report{}, fmt.Errorf("upload: %s (%s)", apiErr.Error, apiErr.Code)
		}
		return api.Report{}, fmt.Errorf("upload: HTTP %d: %s", resp.StatusCode, raw)
	}
	var out api.FlightResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return api.Report{}, err
	}
	fmt.Fprintf(os.Stderr, "batch analysis took %.2f s server-side\n", out.ElapsedSeconds)
	return out.Report, nil
}

// pushSession streams the flight through a session: create, feed frame
// batches, read the final report.
func pushSession(base string, flight *dataset.Flight, frameSec, chunkSec float64, buffer int) (api.Report, error) {
	var created api.SessionResponse
	body, err := json.Marshal(api.SessionRequest{
		Flight:       flight.Name,
		SampleRateHz: flight.Audio.SampleRate,
		Buffer:       buffer,
	})
	if err != nil {
		return api.Report{}, err
	}
	if err := postJSON("POST", base+"/v1/sessions", bytes.NewReader(body), &created); err != nil {
		return api.Report{}, err
	}
	fmt.Fprintf(os.Stderr, "session %s open\n", created.ID)

	reqs, err := api.ChunkFlight(flight, frameSec, chunkSec)
	if err != nil {
		return api.Report{}, err
	}
	sessURL := base + "/v1/sessions/" + created.ID
	total := 0
	for i, r := range reqs {
		raw, err := json.Marshal(r)
		if err != nil {
			return api.Report{}, err
		}
		var resp api.FramesResponse
		if err := postJSON("POST", sessURL+"/frames", bytes.NewReader(raw), &resp); err != nil {
			return api.Report{}, fmt.Errorf("frames %d/%d: %w", i+1, len(reqs), err)
		}
		total += resp.Accepted
		if resp.Shed > 0 {
			fmt.Fprintf(os.Stderr, "warning: server shed %d messages; verdict may diverge from batch\n", resp.Shed)
		}
	}
	fmt.Fprintf(os.Stderr, "streamed %d messages in %d requests; waiting for verdict\n", total, len(reqs))
	var report api.Report
	if err := postJSON("GET", sessURL+"/report", nil, &report); err != nil {
		return api.Report{}, err
	}
	return report, nil
}
