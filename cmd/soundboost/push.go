package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"soundboost/api"
	"soundboost/internal/dataset"
	"soundboost/internal/httpretry"
)

// runPush is the client side of `soundboost serve`: it sends a recorded
// flight to a running service — in one shot (POST /v1/flights) or
// chunked through a streaming session — and prints the returned verdict
// in exactly the format of `soundboost rca`, so the two outputs diff
// clean when the service is healthy. Progress goes to stderr.
//
// The client is fault-tolerant by default: transient failures
// (connection resets, 429 backpressure, 5xx) are retried with
// exponential backoff, and because session chunks carry sequence
// numbers, a chunk resent after a lost ack is acknowledged as a
// duplicate rather than double-published. Against a `serve -journal`
// server this rides through a kill-and-restart mid-upload: the retry
// budget spans the restart, the recovered session still holds every
// acknowledged chunk, and the upload resumes where it left off.
func runPush(args []string) error {
	fs := flag.NewFlagSet("push", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "http://127.0.0.1:8713", "service base URL")
		flightPath = fs.String("flight", "", "flight to push (.sbf)")
		mode       = fs.String("mode", "batch", "batch (one-shot upload) or session (chunked streaming)")
		frameSec   = fs.Float64("frame", 0.05, "audio frame length in seconds (session mode)")
		chunkSec   = fs.Float64("chunk", 2, "flight seconds per frames request (session mode, 0 = single request)")
		buffer     = fs.Int("buffer", 1<<15, "server-side per-topic buffer depth (session mode)")
		retries    = fs.Int("retries", 8, "max retries per request for transient failures")
		retryBase  = fs.Duration("retry-base", 200*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
		pace       = fs.Duration("pace", 0, "sleep between frames requests (session mode); paces the upload like a live source so mid-flight outages land inside it")
	)
	rt := addRuntimeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rt.apply(); err != nil {
		return err
	}
	if *flightPath == "" {
		return fmt.Errorf("-flight is required")
	}
	flight, err := dataset.LoadFile(*flightPath)
	if err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	client := httpretry.New(nil, *retries, *retryBase, time.Now().UnixNano())
	client.Logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }

	var wire api.Report
	switch *mode {
	case "batch":
		wire, err = pushBatch(client, base, *flightPath)
	case "session":
		wire, err = pushSession(client, base, flight, *frameSec, *chunkSec, *buffer, *pace)
	default:
		return fmt.Errorf("unknown -mode %q (want batch or session)", *mode)
	}
	if err != nil {
		return err
	}

	report := wire.ToCore()
	fmt.Print(report.String())
	if flight.Scenario.IsAttack() {
		fmt.Printf("  (ground truth: %s during [%.1f, %.1f))\n",
			flight.Scenario.Kind, flight.Scenario.Window.Start, flight.Scenario.Window.End)
	} else {
		fmt.Println("  (ground truth: benign)")
	}
	return nil
}

// pushBatch uploads the raw .sbf file for one-shot batch RCA. The file
// is read into memory so a retried upload resends identical bytes.
func pushBatch(client *httpretry.Client, base, path string) (api.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return api.Report{}, err
	}
	var out api.FlightResponse
	if err := client.Do("POST", base+"/v1/flights", raw, &out); err != nil {
		return api.Report{}, err
	}
	fmt.Fprintf(os.Stderr, "batch analysis took %.2f s server-side\n", out.ElapsedSeconds)
	return out.Report, nil
}

// flightDuration is the flight's end time across audio and telemetry.
func flightDuration(f *dataset.Flight) float64 {
	d := float64(f.Audio.Samples()) / f.Audio.SampleRate
	if n := len(f.Telemetry); n > 0 && f.Telemetry[n-1].Time > d {
		d = f.Telemetry[n-1].Time
	}
	return d
}

// pushSession streams the flight through a session: create, feed
// sequence-numbered frame batches, read the final report.
func pushSession(client *httpretry.Client, base string, flight *dataset.Flight, frameSec, chunkSec float64, buffer int, pace time.Duration) (api.Report, error) {
	var created api.SessionResponse
	body, err := json.Marshal(api.SessionRequest{
		Flight:       flight.Name,
		SampleRateHz: flight.Audio.SampleRate,
		Buffer:       buffer,
	})
	if err != nil {
		return api.Report{}, err
	}
	if err := client.Do("POST", base+"/v1/sessions", body, &created); err != nil {
		return api.Report{}, err
	}
	fmt.Fprintf(os.Stderr, "session %s open\n", created.ID)

	if chunkSec <= 0 {
		// "Single request" is spelled as a chunk covering the whole flight;
		// ChunkFlight itself rejects non-positive sizes.
		chunkSec = flightDuration(flight) + 1
	}
	reqs, err := api.ChunkFlight(flight, frameSec, chunkSec)
	if err != nil {
		return api.Report{}, err
	}
	sessURL := base + "/v1/sessions/" + created.ID
	total, dups := 0, 0
	for i, r := range reqs {
		if pace > 0 && i > 0 {
			time.Sleep(pace)
		}
		raw, err := json.Marshal(r)
		if err != nil {
			return api.Report{}, err
		}
		var resp api.FramesResponse
		if err := client.Do("POST", sessURL+"/frames", raw, &resp); err != nil {
			return api.Report{}, fmt.Errorf("frames %d/%d: %w", i+1, len(reqs), err)
		}
		total += resp.Accepted
		if resp.Duplicate {
			dups++
		}
		if resp.Shed > 0 {
			fmt.Fprintf(os.Stderr, "warning: server shed %d messages; verdict may diverge from batch\n", resp.Shed)
		}
	}
	if dups > 0 {
		fmt.Fprintf(os.Stderr, "%d chunk(s) acknowledged as duplicates (idempotent resend)\n", dups)
	}
	fmt.Fprintf(os.Stderr, "streamed %d messages in %d requests; waiting for verdict\n", total, len(reqs))
	var report api.Report
	if err := client.Do("GET", sessURL+"/report", nil, &report); err != nil {
		return api.Report{}, err
	}
	return report, nil
}
