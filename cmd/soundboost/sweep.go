package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"soundboost/internal/kalman"
	"soundboost/internal/sweep"
)

// runSweep expands the grid flags into a trial matrix and hands it to
// the sweep runner. Records go to -jsonl (or stdout), the CSV summary
// to -csv, and the rollup is always printed to stdout — everything on
// stdout is deterministic for a fixed -seed, so `sweep ... | diff`
// against a second run is a meaningful check (and what the smoke
// script does). Progress goes to stderr.
func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "", "run against a live server at this base URL (default: self-hosted in-process servers)")
		kfAxis      = fs.String("kf", "", "comma-separated KF variants whose GPS margin is swept: audio-only,audio+imu (self-hosted only; default audio+imu)")
		marginAxis  = fs.String("margins", "", "comma-separated GPS threshold margins (self-hosted only; default 1.1)")
		triageAxis  = fs.String("triage", "", "comma-separated triage-tier settings: on,off (self-hosted only; default follows the analyzer)")
		chunkAxis   = fs.String("chunks", "2", "comma-separated chunk sizes: flight seconds per frames request")
		frameAxis   = fs.String("frames", "0.05", "comma-separated audio frame lengths (s)")
		attackAxis  = fs.String("attacks", "benign,gps-drift", "comma-separated attack families: benign,gps-static,gps-drift,imu-side-swing,imu-dos")
		intenAxis   = fs.String("intensities", "1", "comma-separated attack magnitude scale factors")
		reps        = fs.Int("reps", 1, "flights per attack x intensity cell (wind cycles per rep)")
		seconds     = fs.Float64("seconds", 20, "flight duration (s)")
		seed        = fs.Int64("seed", 42, "master seed; the same seed reproduces the sweep byte for byte")
		concurrency = fs.Int("concurrency", 4, "trials in flight at once")
		buffer      = fs.Int("buffer", 1<<16, "per-topic session buffer depth")
		preset      = fs.String("preset", "fast", "flight synthesis preset: fast (4 kHz) or paper (must match the analyzer's corpus)")
		timings     = fs.Bool("timings", false, "record per-trial wall-clock phase timings (breaks byte-determinism)")
		jsonlPath   = fs.String("jsonl", "", "write per-trial JSONL records here (empty = stdout)")
		csvPath     = fs.String("csv", "", "write the per-trial CSV summary here (empty = skip)")
	)
	af := addAnalyzerFlags(fs)
	rt := addRuntimeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rt.apply(); err != nil {
		return err
	}

	cfg := sweep.Config{
		Addr:        *addr,
		Reps:        *reps,
		Seconds:     *seconds,
		Seed:        *seed,
		Preset:      *preset,
		Concurrency: *concurrency,
		Buffer:      *buffer,
		Timings:     *timings,
		Attacks:     sweep.ParseStrings(*attackAxis),
		Logf:        func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	}
	for _, m := range sweep.ParseStrings(*kfAxis) {
		cfg.KFModes = append(cfg.KFModes, kalman.Mode(m))
	}
	var err error
	if cfg.Margins, err = sweep.ParseFloats("margins", *marginAxis); err != nil {
		return err
	}
	if cfg.Triage, err = sweep.ParseBools("triage", *triageAxis); err != nil {
		return err
	}
	if cfg.ChunkSeconds, err = sweep.ParseFloats("chunks", *chunkAxis); err != nil {
		return err
	}
	if cfg.FrameSeconds, err = sweep.ParseFloats("frames", *frameAxis); err != nil {
		return err
	}
	if cfg.Intensities, err = sweep.ParseFloats("intensities", *intenAxis); err != nil {
		return err
	}
	if *addr == "" {
		if cfg.Analyzer, err = af.load(); err != nil {
			return err
		}
	} else if *af.analyzerPath != "" {
		return fmt.Errorf("-analyzer is unused with -addr: the server owns the analyzer")
	}

	res, err := sweep.Run(context.Background(), cfg)
	if err != nil {
		return err
	}

	if *jsonlPath == "" {
		if err := sweep.WriteJSONL(os.Stdout, res.Records); err != nil {
			return err
		}
	} else {
		if err := writeFileWith(*jsonlPath, func(f *os.File) error {
			return sweep.WriteJSONL(f, res.Records)
		}); err != nil {
			return err
		}
	}
	if *csvPath != "" {
		if err := writeFileWith(*csvPath, func(f *os.File) error {
			return sweep.WriteCSV(f, res.Records)
		}); err != nil {
			return err
		}
	}

	out, err := json.MarshalIndent(res.Rollup, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	return nil
}

// writeFileWith creates path, runs fn over it, and surfaces close
// errors (a short write on flush must fail the sweep, not pass
// silently).
func writeFileWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
