package main

import (
	"flag"
	"fmt"
	"os"

	soundboost "soundboost/internal/core"
	"soundboost/internal/obs"
	"soundboost/internal/parallel"
)

// runtimeFlags is the flag wiring every subcommand shares: the worker
// pool size and the observability endpoint. Register with
// addRuntimeFlags, then call apply() once the set is parsed.
type runtimeFlags struct {
	workers   *int
	debugAddr *string
}

func addRuntimeFlags(fs *flag.FlagSet) *runtimeFlags {
	return &runtimeFlags{
		workers:   fs.Int("workers", 0, "worker-pool size for parallel stages (0 = GOMAXPROCS, 1 = serial)"),
		debugAddr: fs.String("debug-addr", "", "serve /debug/metrics and /debug/pprof on this address (enables the obs layer)"),
	}
}

// apply installs the worker-pool default and, when requested, starts the
// debug endpoint.
func (r *runtimeFlags) apply() error {
	parallel.SetDefaultWorkers(*r.workers)
	if *r.debugAddr == "" {
		return nil
	}
	bound, err := obs.Serve(*r.debugAddr)
	if err != nil {
		return err
	}
	fmt.Printf("debug endpoint on http://%s/debug/metrics\n", bound)
	return nil
}

// analyzerFlags is the shared "where does the calibrated analyzer come
// from" wiring used by rca, live, and serve: either a saved analyzer
// file, or a model plus a benign calibration directory.
type analyzerFlags struct {
	analyzerPath *string
	modelPath    *string
	calibDir     *string
	noTriage     *bool
	precision    *string
}

func addAnalyzerFlags(fs *flag.FlagSet) *analyzerFlags {
	return &analyzerFlags{
		analyzerPath: fs.String("analyzer", "", "saved analyzer path (skips calibration)"),
		modelPath:    fs.String("model", "model.json", "trained model path (when no -analyzer)"),
		calibDir:     fs.String("calib", "flights", "directory of benign calibration flights (when no -analyzer)"),
		noTriage:     fs.Bool("no-triage", false, "run the full pipeline on every window even when the analyzer carries a triage tier"),
		precision:    fs.String("precision", "", "hot-path arithmetic: float64 (exact default) or float32 (fast path; reports carry the documented tolerance)"),
	}
}

// load resolves the flags into a calibrated analyzer.
func (a *analyzerFlags) load() (*soundboost.Analyzer, error) {
	an, err := a.loadRaw()
	if err != nil {
		return nil, err
	}
	if *a.noTriage {
		an = an.WithoutTriage()
	}
	if *a.precision != "" {
		p, err := soundboost.ParsePrecision(*a.precision)
		if err != nil {
			return nil, err
		}
		// Threshold-preserving re-precision: calibration (whether loaded
		// or just run) stays authoritative, only the hot path switches.
		an, err = an.WithPrecision(p)
		if err != nil {
			return nil, err
		}
	}
	return an, nil
}

func (a *analyzerFlags) loadRaw() (*soundboost.Analyzer, error) {
	if *a.analyzerPath != "" {
		af, err := os.Open(*a.analyzerPath)
		if err != nil {
			return nil, err
		}
		defer af.Close()
		return soundboost.LoadAnalyzer(af)
	}
	return buildAnalyzer(*a.modelPath, *a.calibDir)
}
