package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"soundboost/internal/fleet"
)

// replicaList collects repeated -replica flags. Each value is
// name=url[=journal-dir]; the optional journal directory lets the
// gateway recover a replica's sessions from disk when the replica dies
// without draining (the live journal-export endpoint being gone).
type replicaList struct {
	reps []fleet.Replica
}

func (l *replicaList) String() string {
	var parts []string
	for _, r := range l.reps {
		parts = append(parts, r.Name+"="+r.BaseURL)
	}
	return strings.Join(parts, " ")
}

func (l *replicaList) Set(v string) error {
	parts := strings.SplitN(v, "=", 3)
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("want name=url[=journal-dir], got %q", v)
	}
	r := fleet.Replica{Name: parts[0], BaseURL: strings.TrimRight(parts[1], "/")}
	if len(parts) == 3 {
		r.JournalDir = parts[2]
	}
	l.reps = append(l.reps, r)
	return nil
}

// runGateway fronts a fleet of `soundboost serve` replicas with one
// consistent-hash router: sessions are sharded by id, replica health is
// probed continuously, and sessions on draining or dead replicas are
// migrated to a successor by replaying their journals (see DESIGN.md
// "Fleet routing & handoff").
func runGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8712", "listen address")
		vnodes    = fs.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 64)")
		probe     = fs.Duration("probe", 0, "health-probe cadence (0 = default 500ms)")
		downAfter = fs.Int("down-after", 0, "consecutive probe failures before a replica is marked down (0 = default 2)")
		upAfter   = fs.Int("up-after", 0, "consecutive probe successes before a down replica is marked up (0 = default 2)")
		retries   = fs.Int("retries", 3, "per-request retry budget against a replica")
		retryBase = fs.Duration("retry-base", 0, "base retry backoff (0 = default 100ms)")
		seed      = fs.Int64("seed", 1, "retry-jitter seed")
		drainWait = fs.Duration("drain", 60*time.Second, "graceful-drain budget on shutdown")

		replication = fs.Int("replication", 0, "durable journal copies per session, owner included (0 = default 2; 1 disables replication)")
		statePath   = fs.String("state", "", "routing-state checkpoint file; enables gateway HA (lease file lands beside it)")
		standby     = fs.Bool("standby", false, "run as warm standby: wait for the primary's lease on -state to go stale, then take over")
		leaseIvl    = fs.Duration("lease-interval", 0, "primary lease renew cadence (0 = default 250ms)")
		leaseTTL    = fs.Duration("lease-ttl", 0, "stale-lease threshold before a standby takes over (0 = default 8x lease-interval)")
		rebLimit    = fs.Int("rebalance-limit", 0, "max sessions drained back per replica rejoin (0 = default 32)")
		rebPace     = fs.Duration("rebalance-pace", 0, "pause between rejoin-rebalance moves (0 = default 10ms)")
	)
	var replicas replicaList
	fs.Var(&replicas, "replica", "replica as name=url[=journal-dir]; repeat per replica")
	rt := addRuntimeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rt.apply(); err != nil {
		return err
	}
	if len(replicas.reps) == 0 {
		return fmt.Errorf("at least one -replica name=url[=journal-dir] is required")
	}
	if *standby && *statePath == "" {
		return fmt.Errorf("-standby requires -state (the checkpoint to take over from)")
	}

	cfg := fleet.Config{
		Replicas:       replicas.reps,
		VNodes:         *vnodes,
		ProbeInterval:  *probe,
		DownAfter:      *downAfter,
		UpAfter:        *upAfter,
		Retries:        *retries,
		RetryBase:      *retryBase,
		Seed:           *seed,
		Replication:    *replication,
		StatePath:      *statePath,
		LeaseInterval:  *leaseIvl,
		LeaseTTL:       *leaseTTL,
		RebalanceLimit: *rebLimit,
		RebalancePace:  *rebPace,
		Logf:           func(format string, a ...any) { fmt.Printf(format+"\n", a...) },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var g *fleet.Gateway
	var err error
	if *standby {
		sb, err := fleet.NewStandby(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("standby gateway watching lease at %s.lease\n", *statePath)
		if err := sb.WaitLease(ctx); err != nil {
			// Signal while waiting: a standby that was never needed
			// exits clean.
			fmt.Println("standby: signal received while waiting; bye")
			return nil
		}
		if g, err = sb.Takeover(); err != nil {
			return err
		}
		fmt.Println("lease stale; standby promoted to primary")
	} else if g, err = fleet.New(cfg); err != nil {
		return err
	}

	// A promoted standby binds the address its dead primary held; the
	// kernel may not have released it the instant the primary died, so
	// retry the bind briefly instead of failing the takeover.
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", *addr)
		if err == nil {
			break
		}
		if !*standby || i >= 100 {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
	httpSrv := &http.Server{Handler: g}
	fmt.Printf("fleet gateway on http://%s routing %d replica(s)\n", ln.Addr(), len(replicas.reps))
	for _, r := range replicas.reps {
		fmt.Printf("  %s -> %s\n", r.Name, r.BaseURL)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Printf("signal received; draining fleet routes (budget %s)...\n", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := g.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Println("drained; bye")
	return nil
}
