package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"soundboost/internal/server"
)

// runServe hosts the calibrated analyzer as a multi-session HTTP RCA
// service speaking the /v1 API (see the api package and DESIGN.md). It
// drains gracefully on SIGINT/SIGTERM: open sessions are closed, their
// verdicts flushed, and the listener shut down.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8713", "listen address")
		maxSessions = fs.Int("max-sessions", 0, "session-table cap (0 = default 64)")
		maxJobs     = fs.Int("max-jobs", 0, "concurrent batch analyses (0 = default 4)")
		idle        = fs.Duration("idle-timeout", 0, "close sessions idle this long (0 = default 60s)")
		maxAge      = fs.Duration("max-age", 0, "hard per-session deadline (0 = default 15m)")
		drainWait   = fs.Duration("drain", 30*time.Second, "graceful-drain budget on shutdown")
		journalDir  = fs.String("journal", "", "session journal directory; enables crash-safe recovery (empty = off)")
		batchWait   = fs.Duration("batch-timeout", 0, "per-request batch analysis deadline (0 = default 2m)")
	)
	af := addAnalyzerFlags(fs)
	rt := addRuntimeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rt.apply(); err != nil {
		return err
	}
	analyzer, err := af.load()
	if err != nil {
		return err
	}
	svc, err := server.New(analyzer, server.Config{
		MaxSessions:   *maxSessions,
		MaxJobs:       *maxJobs,
		IdleTimeout:   *idle,
		MaxSessionAge: *maxAge,
		JournalDir:    *journalDir,
		BatchTimeout:  *batchWait,
		Logf:          func(format string, a ...any) { fmt.Printf(format+"\n", a...) },
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc}
	fmt.Printf("serving /v1 RCA API on http://%s (healthz: /v1/healthz)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Printf("signal received; draining (budget %s)...\n", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Drain sessions first (reports stay readable), then the listener.
	drainErr := svc.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Println("drained; bye")
	return nil
}
