// Command benchtab regenerates the paper's tables and figures from the
// simulated substrate and prints them as text.
//
// Usage:
//
//	benchtab -scale bench -run all
//	benchtab -scale paper -run table2
//	benchtab -run table1,fig6,importance
//
// Available runs: table1, table2, table3, imu, fig2, fig3, fig6, fig7,
// importance, window, families, interference, ablation, timing,
// throughput, rca, all.
//
// Observability:
//
//	benchtab -debug-addr :8080 ...          # live /debug/metrics + pprof
//	benchtab -run timing,rca -bench-json BENCH_2.json
//	benchtab -validate-bench BENCH_2.json   # schema-check an artifact
//
// -bench-json enables the obs layer for the run and writes a
// schema-versioned machine-readable benchmark report (wall time,
// per-stage timings, allocations, environment) on exit. The throughput
// run adds the flights/sec section the CI bench-gate compares; pass
// -no-triage to measure the full-pipeline baseline only.
//
// Perf-regression gate:
//
//	benchtab -compare BENCH_0.json BENCH_1.json -max-regress 15%
//
// fails (exit 1) when the new report's flights/sec falls more than
// -max-regress below the old one's, or its p99 per-flight latency
// rises more than -max-regress above.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"soundboost/internal/dataset"
	"soundboost/internal/experiments"
	"soundboost/internal/obs"
	"soundboost/internal/parallel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName     = flag.String("scale", "bench", "experiment scale: quick|bench|paper")
		runs          = flag.String("run", "all", "comma-separated experiment list")
		verbose       = flag.Bool("v", false, "stream progress")
		csvDir        = flag.String("csv", "", "directory to export figure data as CSV (empty = no export)")
		workers       = flag.Int("workers", 0, "worker-pool size for parallel stages (0 = GOMAXPROCS, 1 = serial)")
		debugAddr     = flag.String("debug-addr", "", "serve /debug/metrics and /debug/pprof on this address (enables the obs layer)")
		benchJSON     = flag.String("bench-json", "", "write a schema-versioned benchmark report to this path (enables the obs layer)")
		validateBench = flag.String("validate-bench", "", "validate a BENCH_*.json report and exit")
		compareBench  = flag.String("compare", "", "old BENCH_*.json to gate against; the new report follows as a positional argument")
		maxRegress    = flag.String("max-regress", "15%", "tolerated throughput/p99 regression for -compare (e.g. 15% or 0.15)")
		noTriage      = flag.Bool("no-triage", false, "measure the throughput run without the triage tier (full-pipeline baseline)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	if *validateBench != "" {
		report, err := obs.ReadBenchFile(*validateBench)
		if err != nil {
			return fmt.Errorf("validate %s: %w", *validateBench, err)
		}
		fmt.Printf("%s: valid (schema v%d, scale %s, %.1fs wall, %d stages)\n",
			*validateBench, report.SchemaVersion, report.Scale, report.WallSeconds, len(report.Stages))
		return nil
	}

	if *compareBench != "" {
		return runCompare(*compareBench, flag.Args(), *maxRegress)
	}

	if *debugAddr != "" {
		addr, err := obs.Serve(*debugAddr)
		if err != nil {
			return err
		}
		fmt.Printf("debug endpoint on http://%s/debug/metrics\n", addr)
	}

	var bench *obs.BenchStart
	if *benchJSON != "" {
		bench = obs.StartBench()
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "bench":
		scale = experiments.BenchScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Printf("  > "+format+"\n", a...) }
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*runs, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	needLab := all
	for _, r := range []string{"table2", "table3", "imu", "fig6", "fig7", "importance", "interference", "ablation", "timing", "throughput", "rca"} {
		if want[r] {
			needLab = true
		}
	}

	var lab *experiments.Lab
	if needLab {
		fmt.Printf("== building lab (%s scale) ==\n", scale.Name)
		var err error
		lab, err = experiments.NewLab(scale, experiments.WithLogf(logf))
		if err != nil {
			return err
		}
		fmt.Printf("lab ready in %.1fs: train MSE %.4f, val MSE %.4f, test MSE %.4f\n\n",
			lab.BuildSeconds, lab.TrainMSE, lab.ValMSE, lab.TestMSE)
	}

	section := func(name string, f func() error) error {
		if !all && !want[name] {
			return nil
		}
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
		return nil
	}

	if err := section("fig2", func() error {
		r, err := experiments.RunFig2(scale)
		if err != nil {
			return err
		}
		fmt.Print(r.String())
		if *csvDir != "" {
			rows := make([][]float64, len(r.SpectrumFreqs))
			for i := range rows {
				rows[i] = []float64{r.SpectrumFreqs[i], r.SpectrumMags[i]}
			}
			if err := writeCSV(*csvDir, "fig2_spectrum.csv", []string{"freq_hz", "magnitude"}, rows); err != nil {
				return err
			}
			for name, series := range r.Series {
				rows := make([][]float64, len(series.Time))
				for i := range rows {
					rows[i] = []float64{series.Time[i], series.BandAmp[i], series.AccelZ[i]}
				}
				if err := writeCSV(*csvDir, "fig2_"+name+".csv", []string{"time", "aero_amp", "accel_z"}, rows); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := section("fig3", func() error {
		r, err := experiments.RunFig3(scale)
		if err != nil {
			return err
		}
		fmt.Println("time-shift augmentation: window factor -> signature L2 distance from base")
		for i, f := range r.Factors {
			fmt.Printf("  %.1fx  %.3f\n", f, r.FeatureDistance[i])
		}
		return nil
	}); err != nil {
		return err
	}

	if err := section("table1", func() error {
		r, err := experiments.RunTable1(scale, logf)
		if err != nil {
			return err
		}
		fmt.Print(r.String())
		return nil
	}); err != nil {
		return err
	}

	if err := section("window", func() error {
		rows, err := experiments.RunWindowSweep(scale, nil, logf)
		if err != nil {
			return err
		}
		fmt.Println("signature window sweep (validation MSE):")
		for _, row := range rows {
			fmt.Printf("  %.2fs  %.4f\n", row.WindowSeconds, row.ValMSE)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := section("families", func() error {
		rows, err := experiments.RunModelFamilies(scale, logf)
		if err != nil {
			return err
		}
		fmt.Println("model family comparison (validation MSE):")
		for _, row := range rows {
			fmt.Printf("  %-8s %.4f\n", row.Kind, row.ValMSE)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := section("importance", func() error {
		rows, base, err := experiments.RunFrequencyImportance(lab)
		if err != nil {
			return err
		}
		fmt.Printf("frequency-group importance (baseline MSE %.4f):\n", base)
		for _, row := range rows {
			fmt.Printf("  remove %-14s MSE %.4f (%.2fx)\n", row.Group, row.MSE, row.Ratio)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := section("imu", func() error {
		r, err := experiments.RunIMUExperiment(lab, logf)
		if err != nil {
			return err
		}
		fmt.Print(r.String())
		return nil
	}); err != nil {
		return err
	}

	if err := section("fig6", func() error {
		r, err := experiments.RunFig6(lab)
		if err != nil {
			return err
		}
		fmt.Println(r.String())
		if *csvDir != "" {
			n := len(r.BenignHist.Counts)
			rows := make([][]float64, n)
			for i := 0; i < n; i++ {
				rows[i] = []float64{r.BenignHist.BinCenter(i), r.BenignHist.Density(i), r.AttackHist.Density(i)}
			}
			if err := writeCSV(*csvDir, "fig6_residuals.csv",
				[]string{"residual", "benign_density", "attack_density"}, rows); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := section("table2", func() error {
		r, err := experiments.RunTable2(lab, logf)
		if err != nil {
			return err
		}
		fmt.Print(r.String())
		return nil
	}); err != nil {
		return err
	}

	if err := section("fig7", func() error {
		r, err := experiments.RunFig7(lab)
		if err != nil {
			return err
		}
		if *csvDir != "" {
			rows := make([][]float64, len(r.Trace.Time))
			for i := range rows {
				rows[i] = []float64{
					r.Trace.Time[i],
					r.Trace.FusedVel[i].Z, r.Trace.GPSVel[i].Z,
					r.Trace.FusedPos[i].Z, r.Trace.RunningError[i],
				}
			}
			if err := writeCSV(*csvDir, "fig7_trace.csv",
				[]string{"time", "fused_vz", "gps_vz", "fused_z", "running_error"}, rows); err != nil {
				return err
			}
		}
		fmt.Printf("Fig 7 trace (spoof window [%.1f, %.1f), detected=%v at t=%.1f):\n",
			r.SpoofWindow[0], r.SpoofWindow[1], r.Attacked, r.DetectionTime)
		fmt.Printf("%8s %10s %10s %10s %10s\n", "t", "fused vz", "gps vz", "fused z", "run err")
		stride := len(r.Trace.Time) / 24
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(r.Trace.Time); i += stride {
			fmt.Printf("%8.1f %10.2f %10.2f %10.2f %10.2f\n",
				r.Trace.Time[i], r.Trace.FusedVel[i].Z, r.Trace.GPSVel[i].Z,
				r.Trace.FusedPos[i].Z, r.Trace.RunningError[i])
		}
		return nil
	}); err != nil {
		return err
	}

	if err := section("table3", func() error {
		r, err := experiments.RunTable3(lab, logf)
		if err != nil {
			return err
		}
		fmt.Print(r.String())
		return nil
	}); err != nil {
		return err
	}

	if err := section("interference", func() error {
		r, err := experiments.RunRealWorldInterference(lab, logf)
		if err != nil {
			return err
		}
		fmt.Println("real-world sound interference (prediction MSE change):")
		for _, row := range r.Rows {
			fmt.Printf("  %-14s at %.1fm: %+.1f%%\n", row.Kind, row.Distance, row.MSEChangePc)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := section("ablation", func() error {
		r, err := experiments.RunKFAblation(lab, logf)
		if err != nil {
			return err
		}
		fmt.Print(r.String())
		return nil
	}); err != nil {
		return err
	}

	if err := section("timing", func() error {
		r, err := experiments.RunTiming(lab)
		if err != nil {
			return err
		}
		fmt.Printf("signature generation: %.1f%% of flight time\n", 100*r.SignatureSecondsPerFlightSecond)
		fmt.Printf("IMU RCA stage: %.2fs per flight; GPS RCA stage: %.2fs per flight\n",
			r.IMUDetectSeconds, r.GPSDetectSeconds)
		return nil
	}); err != nil {
		return err
	}

	var throughput *experiments.ThroughputResult
	if err := section("throughput", func() error {
		r, err := experiments.RunThroughput(lab, !*noTriage, logf)
		if err != nil {
			return err
		}
		throughput = &r
		fmt.Printf("clean-majority corpus: %d flights (%.0f%% benign)\n", r.Flights, 100*r.CleanFraction)
		fmt.Printf("full pipeline: %.2f flights/sec (p99 %.3fs/flight)\n",
			r.BaselineFPS, r.BaselineP99FlightSeconds)
		if r.TriageFPS > 0 {
			fmt.Printf("with triage:   %.2f flights/sec (p99 %.3fs/flight, %.0f%% fast-path, %.2fx)\n",
				r.TriageFPS, r.P99FlightSeconds, 100*r.FastpathRatio, r.Speedup)
		} else {
			fmt.Println("with triage:   skipped (-no-triage)")
		}
		fmt.Printf("float32 path:  %.2f flights/sec (p99 %.3fs/flight, %.2fx vs float64)\n",
			r.Float32BaselineFPS, r.Float32BaselineP99FlightSeconds, r.Float32Speedup)
		if r.Float32TriageFPS > 0 {
			fmt.Printf("float32+triage: %.2f flights/sec (p99 %.3fs/flight)\n",
				r.Float32TriageFPS, r.Float32P99FlightSeconds)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := section("rca", func() error {
		outcomes, err := experiments.RunEndToEndRCA(lab, logf)
		if err != nil {
			return err
		}
		fmt.Println("end-to-end RCA attribution:")
		for _, o := range outcomes {
			fmt.Printf("  %-20s true=%-16s attributed=%s\n", o.Flight, o.TrueKind, o.Cause)
		}
		return nil
	}); err != nil {
		return err
	}

	if bench != nil {
		var runList []string
		for _, r := range strings.Split(*runs, ",") {
			if r = strings.TrimSpace(r); r != "" {
				runList = append(runList, r)
			}
		}
		report := bench.Collect(obs.BenchMeta{
			Tool:    "benchtab",
			Scale:   scale.Name,
			Runs:    runList,
			Workers: parallel.DefaultWorkers(),
		})
		if throughput != nil {
			report.Throughput = &obs.BenchThroughput{
				Flights:                         throughput.Flights,
				CleanFraction:                   throughput.CleanFraction,
				BaselineFPS:                     throughput.BaselineFPS,
				TriageFPS:                       throughput.TriageFPS,
				Speedup:                         throughput.Speedup,
				FastpathRatio:                   throughput.FastpathRatio,
				BaselineP99FlightSeconds:        throughput.BaselineP99FlightSeconds,
				P99FlightSeconds:                throughput.P99FlightSeconds,
				Float32BaselineFPS:              throughput.Float32BaselineFPS,
				Float32TriageFPS:                throughput.Float32TriageFPS,
				Float32Speedup:                  throughput.Float32Speedup,
				Float32BaselineP99FlightSeconds: throughput.Float32BaselineP99FlightSeconds,
				Float32P99FlightSeconds:         throughput.Float32P99FlightSeconds,
			}
		}
		if err := obs.WriteBenchFile(*benchJSON, report); err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		fmt.Printf("bench report written to %s (%d stages, %.1fs wall)\n",
			*benchJSON, len(report.Stages), report.WallSeconds)
	}

	return nil
}

// runCompare gates a new bench report against an old one:
// `benchtab -compare OLD.json NEW.json -max-regress 15% -min-f32-speedup 1.3`.
// The new report and any trailing flags land in rest because flag
// parsing stops at the first positional argument. -min-f32-speedup
// additionally requires the NEW report's float32 rows to show at least
// that speedup over its own float64 baseline (0 disables the check).
func runCompare(oldPath string, rest []string, tolSpec string) error {
	var newPath, f32Spec string
	for i := 0; i < len(rest); i++ {
		switch {
		case rest[i] == "-max-regress" || rest[i] == "--max-regress":
			if i+1 >= len(rest) {
				return fmt.Errorf("-max-regress needs a value")
			}
			i++
			tolSpec = rest[i]
		case strings.HasPrefix(rest[i], "-max-regress="):
			tolSpec = strings.TrimPrefix(strings.TrimPrefix(rest[i], "-"), "max-regress=")
		case rest[i] == "-min-f32-speedup" || rest[i] == "--min-f32-speedup":
			if i+1 >= len(rest) {
				return fmt.Errorf("-min-f32-speedup needs a value")
			}
			i++
			f32Spec = rest[i]
		case strings.HasPrefix(rest[i], "-min-f32-speedup="):
			f32Spec = strings.TrimPrefix(strings.TrimPrefix(rest[i], "-"), "min-f32-speedup=")
		case newPath == "":
			newPath = rest[i]
		default:
			return fmt.Errorf("unexpected argument %q (usage: benchtab -compare OLD.json NEW.json [-max-regress 15%%] [-min-f32-speedup 1.3])", rest[i])
		}
	}
	if newPath == "" {
		return fmt.Errorf("usage: benchtab -compare OLD.json NEW.json [-max-regress 15%%] [-min-f32-speedup 1.3]")
	}
	tol, err := parseRegress(tolSpec)
	if err != nil {
		return err
	}
	var minF32 float64
	if f32Spec != "" {
		minF32, err = strconv.ParseFloat(strings.TrimSpace(f32Spec), 64)
		if err != nil || minF32 < 0 {
			return fmt.Errorf("-min-f32-speedup %q: want a non-negative multiplier like 1.3", f32Spec)
		}
	}
	oldR, err := obs.ReadBenchFile(oldPath)
	if err != nil {
		return fmt.Errorf("compare %s: %w", oldPath, err)
	}
	newR, err := obs.ReadBenchFile(newPath)
	if err != nil {
		return fmt.Errorf("compare %s: %w", newPath, err)
	}
	if err := obs.CompareBenchReports(oldR, newR, tol); err != nil {
		return fmt.Errorf("%s vs baseline %s: %w", newPath, oldPath, err)
	}
	if err := obs.CheckFloat32Speedup(newR, minF32); err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	fmt.Printf("%s vs baseline %s: OK (%.2f -> %.2f flights/sec, p99 %.3fs -> %.3fs, tolerance %.0f%%)\n",
		newPath, oldPath,
		oldR.Throughput.FPS(), newR.Throughput.FPS(),
		oldR.Throughput.P99(), newR.Throughput.P99(), 100*tol)
	if minF32 > 0 {
		fmt.Printf("%s: float32 speedup %.2fx >= floor %.2fx\n", newPath, newR.Throughput.Float32Speedup, minF32)
	}
	return nil
}

// parseRegress accepts "15%" or "0.15".
func parseRegress(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad -max-regress %q (want e.g. 15%% or 0.15)", s)
	}
	if pct || v >= 1 {
		v /= 100
	}
	if v <= 0 || v >= 1 {
		return 0, fmt.Errorf("-max-regress %q outside (0%%, 100%%)", s)
	}
	return v, nil
}

// writeCSV writes one figure-data table under dir.
func writeCSV(dir, name string, header []string, rows [][]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.WriteSeriesCSV(f, header, rows); err != nil {
		return err
	}
	fmt.Printf("  (wrote %s)\n", filepath.Join(dir, name))
	return f.Close()
}
