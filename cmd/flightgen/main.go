// Command flightgen simulates UAV flights — benign or under GPS/IMU
// attacks — and writes them to disk in the SoundBoost flight format
// (JSON telemetry header + float32 audio payload).
//
// Usage:
//
//	flightgen -out flights/ -mission hover -seconds 30 -seed 1
//	flightgen -out flights/ -mission square -attack gps-drift -attack-start 20 -attack-end 60 -offset-x 30
//	flightgen -out flights/ -mission hover -attack imu-dos -attack-start 10 -attack-end 20
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"soundboost/internal/attack"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flightgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out         = flag.String("out", "flights", "output directory")
		name        = flag.String("name", "", "flight name (default: derived)")
		mission     = flag.String("mission", "hover", "mission: hover|column|dash|square|sweep|circuit")
		seconds     = flag.Float64("seconds", 30, "hover duration (hover mission only)")
		variant     = flag.Int("variant", 0, "mission geometry variant")
		seed        = flag.Int64("seed", 1, "simulation seed")
		wind        = flag.String("wind", "calm", "wind condition: calm|breezy|gusty")
		attackKind  = flag.String("attack", "", "attack: gps-static|gps-drift|imu-side-swing|imu-dos (empty = benign)")
		attackStart = flag.Float64("attack-start", 10, "attack window start (s)")
		attackEnd   = flag.Float64("attack-end", 20, "attack window end (s)")
		offsetX     = flag.Float64("offset-x", 10, "GPS spoof offset north (m)")
		offsetY     = flag.Float64("offset-y", 0, "GPS spoof offset east (m)")
		offsetZ     = flag.Float64("offset-z", 0, "GPS spoof offset down (m)")
		magnitude   = flag.Float64("magnitude", 0, "IMU bias magnitude (0 = mode default)")
		fast        = flag.Bool("fast", false, "reduced-rate preset (4 kHz audio, 250 Hz physics) for quick smoke runs")
	)
	flag.Parse()

	var m sim.Mission
	if *mission == "hover" {
		m = sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: *seconds}
	} else {
		var err error
		m, err = sim.MissionByName(*mission, *variant)
		if err != nil {
			return err
		}
	}

	cfg := dataset.DefaultGenConfig(m, *seed)
	if *fast {
		// Same reduced-rate layout the examples use: the acoustic plan is
		// scaled into the 4 kHz Nyquist range so everything downstream
		// (training, calibration, RCA, live streaming) works unchanged.
		cfg.World.PhysicsRate = 250
		cfg.World.ControlRate = 125
		cfg.World.IMU.SampleRate = 125
		cfg.World.Controller.MaxVel = 3
		cfg.Synth.SampleRate = 4000
		cfg.Synth.MechFreq = 900
		cfg.Synth.AeroFreq = 1500
	}
	switch *wind {
	case "calm":
		cfg.World.Wind = sim.CalmWind()
	case "breezy":
		cfg.World.Wind = sim.BreezyWind()
	case "gusty":
		cfg.World.Wind = sim.GustyWind()
	default:
		return fmt.Errorf("unknown wind condition %q", *wind)
	}

	window := attack.Window{Start: *attackStart, End: *attackEnd}
	offset := mathx.Vec3{X: *offsetX, Y: *offsetY, Z: *offsetZ}
	switch *attackKind {
	case "":
		// benign
	case "gps-static":
		cfg.Scenario = attack.Scenario{Name: *attackKind, GPS: &attack.GPSSpoofer{
			Window: window, Mode: attack.GPSSpoofStatic, SpoofOffset: offset, ReportZeroVel: true,
		}}
	case "gps-drift":
		cfg.Scenario = attack.Scenario{Name: *attackKind, GPS: &attack.GPSSpoofer{
			Window: window, Mode: attack.GPSSpoofDrift, SpoofOffset: offset,
		}}
	case "imu-side-swing":
		mag := *magnitude
		if mag == 0 {
			mag = 1.2
		}
		cfg.Scenario = attack.Scenario{Name: *attackKind, IMU: &attack.IMUBiaser{
			Window: window, Mode: attack.IMUSideSwing, Axis: mathx.Vec3{X: 1},
			Magnitude: mag, RampSeconds: 1, OscillateHz: 0.9,
		}}
	case "imu-dos":
		mag := *magnitude
		if mag == 0 {
			mag = 3
		}
		cfg.Scenario = attack.Scenario{Name: *attackKind, IMU: &attack.IMUBiaser{
			Window: window, Mode: attack.IMUAccelDoS, Axis: mathx.Vec3{Z: 1},
			Magnitude: mag, Rng: rand.New(rand.NewSource(*seed + 1)),
		}}
	default:
		return fmt.Errorf("unknown attack %q", *attackKind)
	}

	if *name != "" {
		cfg.Name = *name
	} else if *attackKind != "" {
		cfg.Name = fmt.Sprintf("%s-%s-%d", *mission, *attackKind, *seed)
	} else {
		cfg.Name = fmt.Sprintf("%s-benign-%d", *mission, *seed)
	}

	f, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	path := filepath.Join(*out, cfg.Name+".sbf")
	if err := f.SaveFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.1fs flight, %d telemetry rows, %.1fs audio @ %g Hz\n",
		path, f.Duration(), len(f.Telemetry), f.Audio.Duration(), f.Audio.SampleRate)
	return nil
}
