// Adversarial sound: reproduce the paper's §IV-D robustness experiments —
// real-world interference (a second UAV, a record-and-replay speaker) and
// the idealised phase-synchronised band attacker — and measure their
// effect on acoustic acceleration predictions.
//
//	go run ./examples/adversarial-sound
package main

import (
	"fmt"
	"log"

	"soundboost/internal/acoustics"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

func genConfig(m sim.Mission, seed int64) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(m, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	return cfg
}

func main() {
	fmt.Println("training acoustic model on benign flights...")
	var benign []*dataset.Flight
	seed := int64(21)
	for i := 0; i < 6; i++ {
		f, err := dataset.Generate(genConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14}, seed))
		if err != nil {
			log.Fatal(err)
		}
		benign = append(benign, f)
		seed += 5
	}
	synth := genConfig(sim.HoverMission{Seconds: 1}, 0).Synth
	sigCfg := soundboost.DefaultSignatureConfig(synth)
	mapCfg := soundboost.DefaultMappingConfig(sigCfg)
	mapCfg.Hidden = 48
	mapCfg.Train.Epochs = 60
	model, _, err := soundboost.TrainModel(benign[:5], nil, mapCfg)
	if err != nil {
		log.Fatal(err)
	}
	target := benign[5]
	base, err := soundboost.EvaluateMSE(model, []*dataset.Flight{target})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean prediction MSE: %.4f\n\n", base)

	withInterference := func(name string, itf acoustics.Interference) {
		clone := &dataset.Flight{
			Name: target.Name, Mission: target.Mission, Scenario: target.Scenario,
			Telemetry: target.Telemetry, Audio: target.Audio.Clone(),
		}
		itf.Apply(clone.Audio)
		mse, err := soundboost.EvaluateMSE(model, []*dataset.Flight{clone})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s MSE %.4f (%+.1f%%)\n", name, mse, 100*(mse-base)/base)
	}

	// --- Real-world interference: not phase-synchronised, attenuated by
	// distance and diffusion (the paper measured 46% intensity at 0.5 m).
	fmt.Println("real-world interference (paper finds no measurable effect):")
	uavSig, err := acoustics.SecondUAVSignal(synth, synth.HoverSpeed, target.Audio.Samples(), 1234)
	if err != nil {
		log.Fatal(err)
	}
	for _, dist := range []float64{2.0, 1.0, 0.5} {
		withInterference(
			fmt.Sprintf("  second UAV at %.1f m", dist),
			acoustics.ExternalSourceInterference{
				Signal: uavSig, Distance: dist, RefDistance: 0.25, IntensityLossFactor: 0.46,
			})
	}
	replay := acoustics.ReplaySignal{Recording: target.Audio.Channels[0], VolumeGain: 0.5}
	withInterference("  record-and-replay speaker at 0.5 m",
		acoustics.ExternalSourceInterference{
			Signal: replay.Signal(), Distance: 0.5, RefDistance: 0.25, IntensityLossFactor: 0.46,
		})

	// --- Idealised phase-synchronised attacker (Tab. III): exact scaling
	// of the aerodynamic band on chosen channels.
	fmt.Println("\nidealised phase-synchronised band attacks (Tab. III worst case):")
	for _, amp := range []float64{0, 0.5, 1.5, 2.0} {
		for _, nch := range []int{1, 4} {
			channels := make([]int, nch)
			for i := range channels {
				channels[i] = i
			}
			withInterference(
				fmt.Sprintf("  aero band x%.0f%% on %d channel(s)", amp*100, nch),
				acoustics.PhaseSyncedBandAttack{
					Channels: channels, Amplitude: amp,
					BandCenter: synth.AeroFreq, BandQ: 3,
				})
		}
	}
	fmt.Println("\nreal-world attacks barely move predictions; only the physically")
	fmt.Println("unrealisable phase-synchronised attacker degrades them materially.")
}
