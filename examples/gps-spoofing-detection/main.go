// GPS spoofing detection: reproduce the paper's §IV-C scenario — a drift
// (takeover) GPS spoof against a hovering UAV — and compare the three
// Kalman-filter configurations of Tab. II: audio-only, the customized
// audio+IMU fusion, and the IMU-only failsafe.
//
//	go run ./examples/gps-spoofing-detection
package main

import (
	"fmt"
	"log"

	"soundboost/internal/attack"
	"soundboost/internal/baselines"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/kalman"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

func genConfig(m sim.Mission, seed int64) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(m, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.World.Controller.MaxVel = 3
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	return cfg
}

func main() {
	fmt.Println("preparing model and detectors (benign corpus)...")
	var benign []*dataset.Flight
	missions := []sim.Mission{
		sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 20},
		sim.NewWaypointMission("dash", mathx.Vec3{Z: -10}, []sim.Waypoint{
			{Pos: mathx.Vec3{X: 8, Z: -10}, Speed: 2, HoldSeconds: 2},
			{Pos: mathx.Vec3{Z: -10}, Speed: 2, HoldSeconds: 2},
		}),
		sim.NewWaypointMission("column", mathx.Vec3{Z: -10}, []sim.Waypoint{
			{Pos: mathx.Vec3{Z: -14}, Speed: 1.5, HoldSeconds: 2},
			{Pos: mathx.Vec3{Z: -10}, Speed: 1.5, HoldSeconds: 2},
		}),
	}
	seed := int64(31)
	for rep := 0; rep < 2; rep++ {
		for _, m := range missions {
			f, err := dataset.Generate(genConfig(m, seed))
			if err != nil {
				log.Fatal(err)
			}
			benign = append(benign, f)
			seed += 5
		}
	}
	sigCfg := soundboost.DefaultSignatureConfig(genConfig(missions[0], 0).Synth)
	mapCfg := soundboost.DefaultMappingConfig(sigCfg)
	mapCfg.Hidden = 48
	mapCfg.Train.Epochs = 60
	model, _, err := soundboost.TrainModel(benign, nil, mapCfg)
	if err != nil {
		log.Fatal(err)
	}
	audioOnly, err := soundboost.NewGPSDetector(model, benign, soundboost.DefaultGPSDetectorConfig(kalman.ModeAudioOnly))
	if err != nil {
		log.Fatal(err)
	}
	audioIMU, err := soundboost.NewGPSDetector(model, benign, soundboost.DefaultGPSDetectorConfig(kalman.ModeAudioIMU))
	if err != nil {
		log.Fatal(err)
	}
	failsafe, err := baselines.NewFailsafe(benign, baselines.DefaultFailsafeConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A 2 m/s drift takeover during [8, 28) of a 32 s hover: the spoofer
	// drags the reported position away; the autopilot chases the lie.
	fmt.Println("launching drift-takeover GPS spoof (2 m/s pull)...")
	cfg := genConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 32}, 999)
	cfg.Scenario = attack.Scenario{
		Name: "gps-drift",
		GPS: &attack.GPSSpoofer{
			Window:      attack.Window{Start: 8, End: 28},
			Mode:        attack.GPSSpoofDrift,
			SpoofOffset: mathx.Vec3{X: 40},
		},
	}
	spoofed, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Show how far the vehicle was physically dragged.
	last := spoofed.Telemetry[len(spoofed.Telemetry)-1]
	fmt.Printf("physical displacement at landing: %.1f m from the hover point\n\n",
		last.TruePos.Sub(mathx.Vec3{Z: -10}).Norm())

	fmt.Println("detector                      verdict    detection time   peak error / threshold")
	report := func(name string, attacked bool, at, peak, thr float64) {
		verdict := "clean"
		tstr := "-"
		if attacked {
			verdict = "SPOOFED"
			tstr = fmt.Sprintf("t=%.1fs", at)
		}
		fmt.Printf("%-28s  %-8s  %-14s  %.2f / %.2f\n", name, verdict, tstr, peak, thr)
	}
	v1, err := audioOnly.Detect(spoofed)
	if err != nil {
		log.Fatal(err)
	}
	report("soundboost audio-only KF", v1.Attacked, v1.DetectionTime, v1.PeakError, v1.Threshold)
	v2, err := audioIMU.Detect(spoofed)
	if err != nil {
		log.Fatal(err)
	}
	report("soundboost audio+IMU KF", v2.Attacked, v2.DetectionTime, v2.PeakError, v2.Threshold)
	v3, err := failsafe.Detect(spoofed)
	if err != nil {
		log.Fatal(err)
	}
	report("failsafe IMU-only KF", v3.Attacked, v3.DetectionTime, v3.PeakStat, v3.Threshold)

	// Fig. 7 style trace from the audio+IMU detector.
	trace, err := audioIMU.Trace(spoofed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvelocity estimation trace (Fig. 7):")
	fmt.Printf("%8s %12s %12s %12s\n", "t", "fused |v|", "gps |v|", "run err")
	stride := len(trace.Time) / 16
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(trace.Time); i += stride {
		marker := ""
		if trace.Time[i] >= 8 && trace.Time[i] < 28 {
			marker = "  << spoof active"
		}
		fmt.Printf("%8.1f %12.2f %12.2f %12.2f%s\n",
			trace.Time[i], trace.FusedVel[i].Norm(), trace.GPSVel[i].Norm(), trace.RunningError[i], marker)
	}
}
