// IMU attack RCA: reproduce the paper's §IV-B scenario — a hovering UAV
// whose IMU is spoofed mid-flight (gyroscope Side-Swing and accelerometer
// DoS) — and show SoundBoost attributing the failure to the IMU from the
// acoustic side-channel.
//
//	go run ./examples/imu-attack-rca
package main

import (
	"fmt"
	"log"
	"math/rand"

	"soundboost/internal/attack"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

func genConfig(m sim.Mission, seed int64) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(m, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.World.Controller.MaxVel = 3
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	return cfg
}

func main() {
	// Train + calibrate on benign hovers and gentle maneuvers.
	fmt.Println("preparing model and detector (benign corpus)...")
	var benign []*dataset.Flight
	missions := []sim.Mission{
		sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14},
		sim.NewWaypointMission("dash", mathx.Vec3{Z: -10}, []sim.Waypoint{
			{Pos: mathx.Vec3{X: 8, Z: -10}, Speed: 2, HoldSeconds: 2},
			{Pos: mathx.Vec3{Z: -10}, Speed: 2, HoldSeconds: 2},
		}),
	}
	seed := int64(11)
	for rep := 0; rep < 3; rep++ {
		for _, m := range missions {
			f, err := dataset.Generate(genConfig(m, seed))
			if err != nil {
				log.Fatal(err)
			}
			benign = append(benign, f)
			seed += 5
		}
	}
	sigCfg := soundboost.DefaultSignatureConfig(genConfig(missions[0], 0).Synth)
	mapCfg := soundboost.DefaultMappingConfig(sigCfg)
	mapCfg.Hidden = 48
	mapCfg.Train.Epochs = 60
	model, _, err := soundboost.TrainModel(benign, nil, mapCfg)
	if err != nil {
		log.Fatal(err)
	}
	detector, err := soundboost.NewIMUDetector(model, benign, soundboost.DefaultIMUDetectorConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benign residuals: N(%.3f, %.3f)\n\n", detector.BenignDistribution().Mu, detector.BenignDistribution().Sigma)

	// Two synthesized IMU biasing attacks during a 14 s hover, spoofing
	// event in [5, 11) (paper: 10 s events while hovering).
	attacks := []struct {
		name   string
		biaser *attack.IMUBiaser
	}{
		{
			"gyroscope side-swing (rocking)",
			&attack.IMUBiaser{
				Window:    attack.Window{Start: 5, End: 11},
				Mode:      attack.IMUSideSwing,
				Axis:      mathx.Vec3{X: 1},
				Magnitude: 1.2, RampSeconds: 1, OscillateHz: 0.9,
			},
		},
		{
			"accelerometer DoS (random injection)",
			&attack.IMUBiaser{
				Window:    attack.Window{Start: 5, End: 11},
				Mode:      attack.IMUAccelDoS,
				Axis:      mathx.Vec3{Z: 1},
				Magnitude: 3, Rng: rand.New(rand.NewSource(77)),
			},
		},
	}
	for _, a := range attacks {
		cfg := genConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14}, 500+int64(len(a.name)))
		cfg.Scenario = attack.Scenario{Name: a.name, IMU: a.biaser}
		f, err := dataset.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		verdict, err := detector.Detect(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attack: %s\n", a.name)
		if verdict.Attacked {
			fmt.Printf("  DETECTED at t=%.1fs (onset t=5.0s, delay %.1fs)\n", verdict.DetectionTime, verdict.DetectionTime-5)
			fmt.Printf("  residual sigma during attack: %.2f (benign %.2f)\n",
				verdict.AttackStd, detector.BenignDistribution().Sigma)
		} else {
			fmt.Println("  missed!")
		}
		// Fig. 6 style histogram summary.
		hist, err := detector.ResidualHistogram(f, -6, 6, 24)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  z-residual histogram (Fig. 6):")
		maxD := 0.0
		for i := range hist.Counts {
			if d := hist.Density(i); d > maxD {
				maxD = d
			}
		}
		for i := range hist.Counts {
			bar := int(40 * hist.Density(i) / maxD)
			fmt.Printf("  %6.1f %s\n", hist.BinCenter(i), repeat('#', bar))
		}
		fmt.Println()
	}
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
