// Quickstart: simulate a benign training corpus, train the acoustic
// model, then run SoundBoost's two-stage RCA over a fresh flight.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

// genConfig builds a reduced-rate configuration so the example runs in
// seconds on any machine.
func genConfig(m sim.Mission, seed int64) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(m, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.World.Controller.MaxVel = 3
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	return cfg
}

func main() {
	// 1. Fly a small benign corpus: the sound + telemetry of each flight
	//    is what a companion computer would record via MAVLink.
	fmt.Println("1. simulating benign training flights...")
	missions := []sim.Mission{
		sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14},
		sim.NewWaypointMission("dash", mathx.Vec3{Z: -10}, []sim.Waypoint{
			{Pos: mathx.Vec3{X: 8, Z: -10}, Speed: 2, HoldSeconds: 2},
			{Pos: mathx.Vec3{Z: -10}, Speed: 2, HoldSeconds: 2},
		}),
		sim.NewWaypointMission("column", mathx.Vec3{Z: -10}, []sim.Waypoint{
			{Pos: mathx.Vec3{Z: -14}, Speed: 1.5, HoldSeconds: 2},
			{Pos: mathx.Vec3{Z: -10}, Speed: 1.5, HoldSeconds: 2},
		}),
	}
	var flights []*dataset.Flight
	seed := int64(1)
	for rep := 0; rep < 2; rep++ {
		for _, m := range missions {
			f, err := dataset.Generate(genConfig(m, seed))
			if err != nil {
				log.Fatal(err)
			}
			flights = append(flights, f)
			seed += 7
		}
	}
	fmt.Printf("   %d flights, %.0f s of audio\n", len(flights), float64(len(flights))*flights[0].Audio.Duration())

	// 2. Train the acoustic signature -> acceleration model (paper §III-B)
	//    with 5x time-shift augmentation.
	fmt.Println("2. training the acoustic model...")
	sigCfg := soundboost.DefaultSignatureConfig(genConfig(missions[0], 0).Synth)
	mapCfg := soundboost.DefaultMappingConfig(sigCfg)
	mapCfg.Hidden = 48
	mapCfg.Train.Epochs = 60
	model, _, err := soundboost.TrainModel(flights, nil, mapCfg)
	if err != nil {
		log.Fatal(err)
	}
	mse, err := soundboost.EvaluateMSE(model, flights[:2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   model MSE on benign flights: %.4f\n", mse)

	// 3. Calibrate the two-stage analyzer on benign flights.
	fmt.Println("3. calibrating detectors...")
	analyzer, err := soundboost.NewAnalyzer(model, flights)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Analyse a fresh (benign) flight: the report attributes the root
	//    cause of any anomaly — here there is none.
	fmt.Println("4. analysing a fresh flight...")
	fresh, err := dataset.Generate(genConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14}, 999))
	if err != nil {
		log.Fatal(err)
	}
	report, err := analyzer.Analyze(fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report.String())
}
