// TDoA rotor localization: reproduce the paper's §II-D claim — an
// off-centre 4-microphone array can locate and identify each propeller by
// Time-Difference-of-Arrival — using GCC-PHAT over the synthesised rotor
// sound.
//
//	go run ./examples/tdoa-localization
package main

import (
	"fmt"
	"log"

	"soundboost/internal/acoustics"
)

func main() {
	cfg := acoustics.DefaultSynthConfig()
	cfg.AmbientStd = 0.001
	cfg.WindNoiseCoeff = 0
	arr := acoustics.DefaultArrayConfig(0.25)

	fmt.Println("array geometry (body frame, metres):")
	for m, p := range arr.MicPositions {
		fmt.Printf("  mic %d at %v\n", m, p)
	}
	for r, p := range arr.RotorPositions {
		fmt.Printf("  rotor %d at %v\n", r, p)
	}
	fmt.Println()

	correct := 0
	for rotor := 0; rotor < acoustics.NumRotors; rotor++ {
		// Spin only one rotor so the array hears a single dominant source.
		var speed [acoustics.NumRotors]float64
		speed[rotor] = cfg.HoverSpeed * 1.1
		frames := []acoustics.RotorFrame{
			{Time: 0, Speed: speed},
			{Time: 1, Speed: speed},
		}
		rec, err := acoustics.RenderFlight(frames, cfg, arr)
		if err != nil {
			log.Fatal(err)
		}
		tdoa, err := acoustics.MeasureTDoA(rec, 2000, 8192, 0.005)
		if err != nil {
			log.Fatal(err)
		}
		pos, err := acoustics.LocalizeSource(arr, tdoa, 0.4, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		id, dist := acoustics.IdentifyRotor(arr, pos)
		status := "OK"
		if id == rotor {
			correct++
		} else {
			status = "WRONG"
		}
		fmt.Printf("rotor %d: localized to %v -> identified as rotor %d (%.2f m off)  [%s]\n",
			rotor, pos, id, dist, status)
		fmt.Printf("  pairwise TDoA vs mic 0 (microseconds): %+.1f %+.1f %+.1f\n",
			tdoa.Delay[0][1]*1e6, tdoa.Delay[0][2]*1e6, tdoa.Delay[0][3]*1e6)
	}
	fmt.Printf("\n%d/%d rotors identified correctly from sound alone\n", correct, acoustics.NumRotors)
}
