package bench

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIWorkflow drives the released binaries end-to-end: generate a
// benign corpus and two incident flights, train a model, calibrate and
// persist an analyzer, then attribute both incidents. Skipped with -short
// (it builds binaries and simulates ~3 minutes of flight).
func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")
	if err := os.MkdirAll(bin, 0o755); err != nil {
		t.Fatal(err)
	}
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// Corpus: six short benign hovers plus two maneuvers.
	for _, seed := range []string{"1", "2", "3", "4", "5", "6"} {
		run("flightgen", "-out", "corpus", "-mission", "hover", "-seconds", "14", "-seed", seed)
	}
	run("flightgen", "-out", "corpus", "-mission", "dash", "-seed", "7")
	run("flightgen", "-out", "corpus", "-mission", "square", "-seed", "8")

	// Incidents: an IMU DoS and a GPS drift takeover.
	run("flightgen", "-out", "incidents", "-mission", "hover", "-seconds", "26",
		"-attack", "imu-dos", "-attack-start", "8", "-attack-end", "18", "-seed", "98")
	run("flightgen", "-out", "incidents", "-mission", "hover", "-seconds", "36",
		"-attack", "gps-drift", "-attack-start", "8", "-attack-end", "32",
		"-offset-x", "110", "-seed", "99")

	// Train, calibrate, persist.
	out := run("soundboost", "train", "-flights", "corpus", "-model", "model.json", "-epochs", "40")
	if !strings.Contains(out, "model written") {
		t.Fatalf("train output missing confirmation:\n%s", out)
	}
	out = run("soundboost", "calibrate", "-model", "model.json", "-calib", "corpus", "-out", "analyzer.json")
	if !strings.Contains(out, "calibrated analyzer written") {
		t.Fatalf("calibrate output missing confirmation:\n%s", out)
	}

	// Attribute the incidents from the saved analyzer.
	out = run("soundboost", "rca", "-analyzer", "analyzer.json",
		"-flight", filepath.Join("incidents", "hover-imu-dos-98.sbf"))
	if !strings.Contains(out, "IMU: ATTACKED") {
		t.Errorf("IMU incident not attributed:\n%s", out)
	}
	out = run("soundboost", "rca", "-analyzer", "analyzer.json",
		"-flight", filepath.Join("incidents", "hover-gps-drift-99.sbf"))
	if !strings.Contains(out, "GPS: SPOOFED") {
		t.Errorf("GPS incident not attributed:\n%s", out)
	}

	// The table harness runs at quick scale.
	out = run("benchtab", "-scale", "quick", "-run", "fig3")
	if !strings.Contains(out, "time-shift augmentation") {
		t.Errorf("benchtab fig3 output unexpected:\n%s", out)
	}
}
