#!/bin/sh
# bench_gate.sh — the CI perf-regression gate for the triage fast path
# and the float32 precision fast path.
#
# Runs a fresh instrumented throughput bench (benchtab -run throughput),
# then compares it against the newest committed BENCH_<n>.json baseline
# with `benchtab -compare OLD NEW -max-regress <tol> -min-f32-speedup
# <floor>`: the gate fails when flights/sec drops, or p99 per-flight
# latency rises, by more than the tolerance (default 15%), or when the
# fresh report's float32 speedup over its own float64 baseline falls
# below the committed floor (default 1.3x).
#
# Before trusting its own pass verdict, the script self-tests the gate
# on two injected synthetic failures — the fresh report with halved
# throughput and doubled p99, and the fresh report with a sub-floor
# float32 speedup — both of which MUST fail the comparison. A gate that
# cannot reject a 2x slowdown or a collapsed precision win is broken,
# and that brokenness should fail CI louder than any real regression.
#
# Environment:
#   MAX_REGRESS       tolerance for -max-regress (default 15%)
#   MIN_F32_SPEEDUP   floor for -min-f32-speedup (default 1.3; 0 disables)
#   BENCH_GATE_SCALE  experiment scale for the fresh run (default bench)
set -eu

cd "$(dirname "$0")/.."

MAX_REGRESS="${MAX_REGRESS:-15%}"
MIN_F32_SPEEDUP="${MIN_F32_SPEEDUP:-1.3}"
SCALE="${BENCH_GATE_SCALE:-bench}"

# Newest committed baseline: the highest BENCH_<n>.json, starting at the
# pre-triage BENCH_0.json.
baseline=""
n=0
while [ -e "BENCH_$n.json" ]; do
    baseline="BENCH_$n.json"
    n=$((n + 1))
done
if [ -z "$baseline" ]; then
    echo "bench_gate: no committed BENCH_<n>.json baseline (run make bench-json)" >&2
    exit 1
fi
echo "bench_gate: baseline $baseline, tolerance $MAX_REGRESS, float32 floor ${MIN_F32_SPEEDUP}x, scale $SCALE"

fresh="${TMPDIR:-/tmp}/bench_gate_$$.json"
doctored="$fresh.regressed"
doctored_f32="$fresh.f32"
trap 'rm -f "$fresh" "$doctored" "$doctored_f32"' EXIT

go run ./cmd/benchtab -scale "$SCALE" -run throughput -bench-json "$fresh"
go run ./cmd/benchtab -validate-bench "$fresh"

# Self-test 1: inject a synthetic regression and require the gate to fail.
python3 - "$fresh" "$doctored" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
tp = report["throughput"]
tp["baseline_flights_per_sec"] /= 2
if tp["triage_flights_per_sec"]:
    tp["triage_flights_per_sec"] /= 2
tp["baseline_p99_flight_seconds"] *= 2
if tp["p99_flight_seconds"]:
    tp["p99_flight_seconds"] *= 2
json.dump(report, open(sys.argv[2], "w"))
EOF
if go run ./cmd/benchtab -compare "$baseline" "$doctored" -max-regress "$MAX_REGRESS" >/dev/null 2>&1; then
    echo "bench_gate: SELF-TEST FAILED: an injected 2x slowdown passed the gate" >&2
    exit 1
fi
echo "bench_gate: self-test ok (injected 2x slowdown rejected)"

# Self-test 2: collapse the float32 speedup below any sane floor and
# require the speedup gate to fail.
if [ "$MIN_F32_SPEEDUP" != "0" ]; then
    python3 - "$fresh" "$doctored_f32" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
tp = report["throughput"]
tp["float32_baseline_flights_per_sec"] = tp["baseline_flights_per_sec"]
tp["float32_speedup"] = 1.0
json.dump(report, open(sys.argv[2], "w"))
EOF
    if go run ./cmd/benchtab -compare "$baseline" "$doctored_f32" -max-regress "$MAX_REGRESS" -min-f32-speedup "$MIN_F32_SPEEDUP" >/dev/null 2>&1; then
        echo "bench_gate: SELF-TEST FAILED: a collapsed float32 speedup passed the gate" >&2
        exit 1
    fi
    echo "bench_gate: self-test ok (collapsed float32 speedup rejected)"
fi

go run ./cmd/benchtab -compare "$baseline" "$fresh" -max-regress "$MAX_REGRESS" -min-f32-speedup "$MIN_F32_SPEEDUP"
echo "bench_gate: OK"
