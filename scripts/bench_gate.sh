#!/bin/sh
# bench_gate.sh — the CI perf-regression gate for the triage fast path.
#
# Runs a fresh instrumented throughput bench (benchtab -run throughput),
# then compares it against the newest committed BENCH_<n>.json baseline
# with `benchtab -compare OLD NEW -max-regress <tol>`: the gate fails
# when flights/sec drops, or p99 per-flight latency rises, by more than
# the tolerance (default 15%).
#
# Before trusting its own pass verdict, the script self-tests the gate
# on an injected synthetic regression — the fresh report with halved
# throughput and doubled p99 — which MUST fail the comparison. A gate
# that cannot reject a 2x slowdown is broken, and that brokenness should
# fail CI louder than any real regression.
#
# Environment:
#   MAX_REGRESS       tolerance for -max-regress (default 15%)
#   BENCH_GATE_SCALE  experiment scale for the fresh run (default bench)
set -eu

cd "$(dirname "$0")/.."

MAX_REGRESS="${MAX_REGRESS:-15%}"
SCALE="${BENCH_GATE_SCALE:-bench}"

# Newest committed baseline: the highest BENCH_<n>.json, starting at the
# pre-triage BENCH_0.json.
baseline=""
n=0
while [ -e "BENCH_$n.json" ]; do
    baseline="BENCH_$n.json"
    n=$((n + 1))
done
if [ -z "$baseline" ]; then
    echo "bench_gate: no committed BENCH_<n>.json baseline (run make bench-json)" >&2
    exit 1
fi
echo "bench_gate: baseline $baseline, tolerance $MAX_REGRESS, scale $SCALE"

fresh="${TMPDIR:-/tmp}/bench_gate_$$.json"
doctored="$fresh.regressed"
trap 'rm -f "$fresh" "$doctored"' EXIT

go run ./cmd/benchtab -scale "$SCALE" -run throughput -bench-json "$fresh"
go run ./cmd/benchtab -validate-bench "$fresh"

# Self-test: inject a synthetic regression and require the gate to fail.
python3 - "$fresh" "$doctored" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
tp = report["throughput"]
tp["baseline_flights_per_sec"] /= 2
if tp["triage_flights_per_sec"]:
    tp["triage_flights_per_sec"] /= 2
tp["baseline_p99_flight_seconds"] *= 2
if tp["p99_flight_seconds"]:
    tp["p99_flight_seconds"] *= 2
json.dump(report, open(sys.argv[2], "w"))
EOF
if go run ./cmd/benchtab -compare "$baseline" "$doctored" -max-regress "$MAX_REGRESS" >/dev/null 2>&1; then
    echo "bench_gate: SELF-TEST FAILED: an injected 2x slowdown passed the gate" >&2
    exit 1
fi
echo "bench_gate: self-test ok (injected 2x slowdown rejected)"

go run ./cmd/benchtab -compare "$baseline" "$fresh" -max-regress "$MAX_REGRESS"
echo "bench_gate: OK"
