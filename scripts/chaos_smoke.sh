#!/bin/sh
# chaos_smoke.sh — end-to-end exercise of the fault-injection harness
# and the crash-safe session journal:
#
#   1. Generate a reduced-rate corpus, train and calibrate (same -fast
#      preset as serve_smoke.sh).
#   2. Run `soundboost chaos -seed 42` TWICE and require byte-identical
#      stdout: same seed, same faults, same verdicts, same accounting.
#      The soak itself asserts fault/metric reconciliation, per-session
#      panic isolation, zero shed messages, and no goroutine leaks.
#   3. Run a different seed and require the fault schedule to differ
#      (the determinism must come from the seed, not from a constant).
#   4. Start `soundboost serve -journal`, begin a streaming upload, kill
#      the server with SIGKILL mid-flight (no drain, no flush), restart
#      it over the same journal, and require the SAME push client to
#      ride through the outage on its retry loop: the recovered session
#      keeps every acknowledged chunk, resends are absorbed as
#      duplicates, and the final verdict equals offline `soundboost rca`.
#
# Everything runs in a throwaway temp directory. Run from the repo root,
# or via `make chaos-smoke`.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

addr=127.0.0.1:18714

echo "== generate corpus (reduced rate) =="
seed=1
for mission in hover dash column; do
    for rep in 1 2; do
        go run ./cmd/flightgen -fast -out "$tmp/train" -mission "$mission" \
            -seconds 14 -seed $seed -name "$mission-benign-$seed"
        seed=$((seed + 7))
    done
done
go run ./cmd/flightgen -fast -out "$tmp" -mission hover -seconds 20 -seed 99 \
    -name incident

echo "== build + train + calibrate =="
# CHAOS_BUILDFLAGS lets CI run the whole soak under the race detector
# (CHAOS_BUILDFLAGS=-race); unquoted on purpose so flags word-split.
go build ${CHAOS_BUILDFLAGS:-} -o "$tmp/soundboost" ./cmd/soundboost
"$tmp/soundboost" train -flights "$tmp/train" -model "$tmp/model.json" \
    -hidden 48 -epochs 100 -augment 0
"$tmp/soundboost" calibrate -model "$tmp/model.json" \
    -calib "$tmp/train" -out "$tmp/analyzer.json"

echo "== chaos soak: same seed twice must be byte-identical =="
"$tmp/soundboost" chaos -analyzer "$tmp/analyzer.json" \
    -flight "$tmp/incident.sbf" -seed 42 > "$tmp/chaos.42a.out"
"$tmp/soundboost" chaos -analyzer "$tmp/analyzer.json" \
    -flight "$tmp/incident.sbf" -seed 42 > "$tmp/chaos.42b.out"
diff -u "$tmp/chaos.42a.out" "$tmp/chaos.42b.out" || {
    echo "chaos-smoke: seed 42 is not reproducible" >&2
    exit 1
}
sed 's/^/  /' "$tmp/chaos.42a.out"

echo "== chaos soak: a different seed must differ =="
"$tmp/soundboost" chaos -analyzer "$tmp/analyzer.json" \
    -flight "$tmp/incident.sbf" -seed 43 > "$tmp/chaos.43.out"
if diff -q "$tmp/chaos.42a.out" "$tmp/chaos.43.out" >/dev/null; then
    echo "chaos-smoke: seeds 42 and 43 injected identical faults" >&2
    exit 1
fi

echo "== offline verdict for the recovery check =="
"$tmp/soundboost" rca -analyzer "$tmp/analyzer.json" \
    -flight "$tmp/incident.sbf" > "$tmp/incident.rca.out"

start_server() {
    "$tmp/soundboost" serve -analyzer "$tmp/analyzer.json" -addr "$addr" \
        -journal "$tmp/journal" >> "$tmp/serve.log" 2>&1 &
    server_pid=$!
    i=0
    while [ $i -lt 100 ]; do
        if curl -fsS "http://$addr/v1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$server_pid" 2>/dev/null || {
            echo "chaos-smoke: server exited before becoming ready" >&2
            cat "$tmp/serve.log" >&2
            exit 1
        }
        sleep 0.2
        i=$((i + 1))
    done
    echo "chaos-smoke: server never became ready" >&2
    exit 1
}

echo "== crash-safe journal: upload, SIGKILL mid-flight, restart, resume =="
start_server
# Stream the flight in many small chunks so the kill lands mid-upload;
# the generous retry budget is what carries the client across the
# restart window.
"$tmp/soundboost" push -addr "http://$addr" -flight "$tmp/incident.sbf" \
    -mode session -chunk 1 -retries 30 -retry-base 300ms \
    > "$tmp/incident.push.out" 2> "$tmp/push.log" &
push_pid=$!
sleep 0.5
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== restart over the same journal while the client retries =="
start_server
if ! wait "$push_pid"; then
    echo "chaos-smoke: push did not survive the server restart" >&2
    sed 's/^/  push: /' "$tmp/push.log" >&2
    exit 1
fi
diff -u "$tmp/incident.rca.out" "$tmp/incident.push.out" || {
    echo "chaos-smoke: post-restart session verdict diverged from offline rca" >&2
    exit 1
}
grep -h "recovered" "$tmp/serve.log" | sed 's/^/  /' || true
grep -h "duplicate" "$tmp/push.log" | sed 's/^/  /' || true

kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""

echo "chaos-smoke: OK"
