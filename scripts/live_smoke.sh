#!/bin/sh
# live_smoke.sh — end-to-end smoke test of the live streaming pipeline:
# generate a reduced-rate corpus with flightgen, train + calibrate with
# the soundboost CLI, then replay a benign flight and a GPS-drift attack
# through the mavbus with `soundboost live` and check the verdicts.
# Everything runs in a throwaway temp directory; total runtime is a few
# seconds (the -fast preset keeps audio at 4 kHz).
# Run from the repo root, or via `make live-smoke`.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== generate corpus (reduced rate) =="
seed=1
for mission in hover dash column; do
    for rep in 1 2; do
        go run ./cmd/flightgen -fast -out "$tmp/train" -mission "$mission" \
            -seconds 14 -seed $seed -name "$mission-benign-$seed"
        seed=$((seed + 7))
    done
done
go run ./cmd/flightgen -fast -out "$tmp" -mission hover -seconds 20 -seed 99 \
    -name benign-incident
go run ./cmd/flightgen -fast -out "$tmp" -mission hover -seconds 20 -seed 99 \
    -attack gps-drift -attack-start 6 -attack-end 18 -offset-x 24 \
    -name spoofed-incident

echo "== train + calibrate =="
go run ./cmd/soundboost train -flights "$tmp/train" -model "$tmp/model.json" \
    -hidden 48 -epochs 100 -augment 0
go run ./cmd/soundboost calibrate -model "$tmp/model.json" \
    -calib "$tmp/train" -out "$tmp/analyzer.json"

echo "== live replay: benign flight =="
go run ./cmd/soundboost live -analyzer "$tmp/analyzer.json" \
    -flight "$tmp/benign-incident.sbf" -speed 50 | tee "$tmp/benign.out"
grep -q "root cause: none" "$tmp/benign.out" || {
    echo "live-smoke: benign replay did not report 'root cause: none'" >&2
    exit 1
}

echo "== live replay: GPS drift attack, 5% telemetry drop =="
go run ./cmd/soundboost live -analyzer "$tmp/analyzer.json" \
    -flight "$tmp/spoofed-incident.sbf" -speed 0 -drop 0.05 -seed 3 \
    | tee "$tmp/attack.out"
grep -q "root cause: gps" "$tmp/attack.out" || {
    echo "live-smoke: GPS-drift replay did not report 'root cause: gps'" >&2
    exit 1
}

echo "live-smoke: OK"
