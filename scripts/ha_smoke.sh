#!/bin/sh
# ha_smoke.sh — end-to-end exercise of fleet high availability: three
# journaled `soundboost serve` replicas behind a primary gateway with a
# warm standby, losing BOTH an owner replica (process + journal disk)
# and the primary gateway mid-upload.
#
#   1. Generate a reduced-rate corpus, train and calibrate (same -fast
#      preset as serve_smoke.sh).
#   2. Record the single-node golden: offline `soundboost rca` over the
#      incident flight.
#   3. Start three journaled replicas, a primary gateway with journal
#      replication (-replication 2) and a routing-state checkpoint
#      (-state), and a standby gateway on the SAME address watching the
#      primary's lease.
#   4. Push the incident as a paced streaming session. Mid-flight:
#      SIGKILL the owning replica AND rm -rf its journal directory —
#      the live export and the disk fallback are both gone, so the
#      gateway must rebuild the session from a follower's replicated
#      journal copy. Then SIGKILL the primary gateway — the standby
#      must see the lease go stale, restore placements from the
#      checkpoint, bind the same address, and finish the stream.
#   5. The verdict must be byte-identical to the single-node golden,
#      and a batch upload through the promoted standby must match too.
#   6. TERM the promoted standby and surviving replicas; drains must
#      succeed.
#
# FLEET_BUILDFLAGS=-race runs every binary under the race detector.
# Everything runs in a throwaway temp directory. Run from the repo root,
# or via `make ha-smoke`.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

gw_addr=127.0.0.1:18722

echo "== generate corpus (reduced rate) =="
seed=1
for mission in hover dash column; do
    for rep in 1 2; do
        go run ./cmd/flightgen -fast -out "$tmp/train" -mission "$mission" \
            -seconds 14 -seed $seed -name "$mission-benign-$seed"
        seed=$((seed + 7))
    done
done
go run ./cmd/flightgen -fast -out "$tmp" -mission hover -seconds 20 -seed 99 \
    -name incident

echo "== build + train + calibrate =="
# Unquoted on purpose so FLEET_BUILDFLAGS word-splits (e.g. -race).
go build ${FLEET_BUILDFLAGS:-} -o "$tmp/soundboost" ./cmd/soundboost
"$tmp/soundboost" train -flights "$tmp/train" -model "$tmp/model.json" \
    -hidden 48 -epochs 100 -augment 0
"$tmp/soundboost" calibrate -model "$tmp/model.json" \
    -calib "$tmp/train" -out "$tmp/analyzer.json"

echo "== single-node golden verdict =="
"$tmp/soundboost" rca -analyzer "$tmp/analyzer.json" \
    -flight "$tmp/incident.sbf" > "$tmp/golden.out"

wait_healthz() {
    i=0
    while [ $i -lt 100 ]; do
        if curl -fsS "http://$1/v1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
        i=$((i + 1))
    done
    echo "ha-smoke: $2 never became ready on $1" >&2
    exit 1
}

wait_log() { # wait_log <file> <pattern> <what>
    i=0
    while [ $i -lt 100 ]; do
        if grep -q "$2" "$1" 2>/dev/null; then
            return 0
        fi
        sleep 0.2
        i=$((i + 1))
    done
    echo "ha-smoke: $3 (no \"$2\" in $1)" >&2
    cat "$1" >&2
    exit 1
}

echo "== start 3 journaled replicas + primary/standby gateways =="
replica_flags=""
for n in 1 2 3; do
    addr=127.0.0.1:$((18722 + n))
    "$tmp/soundboost" serve -analyzer "$tmp/analyzer.json" -addr "$addr" \
        -journal "$tmp/journal$n" > "$tmp/serve$n.log" 2>&1 &
    eval "pid_r$n=$!"
    pids="$pids $!"
    replica_flags="$replica_flags -replica r$n=http://$addr=$tmp/journal$n"
done
for n in 1 2 3; do
    wait_healthz "127.0.0.1:$((18722 + n))" "replica r$n"
done
ha_flags="-probe 200ms -replication 2 -state $tmp/gateway.state \
    -lease-interval 200ms -lease-ttl 1s"
# shellcheck disable=SC2086 # replica_flags / ha_flags must word-split
"$tmp/soundboost" gateway -addr "$gw_addr" $ha_flags $replica_flags \
    > "$tmp/gateway.log" 2>&1 &
gw_pid=$!
pids="$pids $gw_pid"
wait_healthz "$gw_addr" "primary gateway"
# The standby shares the address: it binds only after a takeover.
# shellcheck disable=SC2086
"$tmp/soundboost" gateway -addr "$gw_addr" -standby $ha_flags $replica_flags \
    > "$tmp/standby.log" 2>&1 &
sb_pid=$!
pids="$pids $sb_pid"
wait_log "$tmp/standby.log" "standby gateway watching lease" "standby never started"

echo "== stream through the gateway; kill owner replica + wipe its journal, then kill the gateway =="
# -pace keeps the upload in flight for several seconds (20 one-second
# chunks at 150ms spacing) so both faults reliably land mid-stream.
"$tmp/soundboost" push -addr "http://$gw_addr" -flight "$tmp/incident.sbf" \
    -mode session -chunk 1 -pace 150ms -retries 30 -retry-base 300ms \
    > "$tmp/ha.push.out" 2> "$tmp/push.log" &
push_pid=$!
# The gateway logs each placement as "session g-XXXXXXXX -> rN/s-...".
owner=""
i=0
while [ $i -lt 50 ]; do
    owner=$(sed -n 's/.*session g-[0-9]* -> \(r[0-9]*\)\/.*/\1/p' "$tmp/gateway.log" | head -1)
    [ -n "$owner" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$owner" ]; then
    echo "ha-smoke: no session placement in gateway log" >&2
    cat "$tmp/gateway.log" >&2
    exit 1
fi
sleep 0.5
eval "owner_pid=\$pid_$(echo "$owner" | tr -cd 'r0-9')"
owner_journal="$tmp/journal$(echo "$owner" | tr -cd '0-9')"
echo "  session placed on $owner (pid $owner_pid); wiping $owner_journal and killing it"
# Wipe first, then kill: the gateway must never win a race to read the
# disk between the two faults — the follower copy is the only source.
rm -rf "$owner_journal"
kill -9 "$owner_pid"
wait "$owner_pid" 2>/dev/null || true
# With process AND disk gone, the failover journal must come from a
# follower's replicated copy.
wait_log "$tmp/gateway.log" "failed over $owner" "no failover off $owner"
grep -q "served from follower copy" "$tmp/gateway.log" || {
    echo "ha-smoke: failover did not use a follower journal copy" >&2
    cat "$tmp/gateway.log" >&2
    exit 1
}

echo "  killing primary gateway (pid $gw_pid); standby must take over"
kill -9 "$gw_pid"
wait "$gw_pid" 2>/dev/null || true
wait_log "$tmp/standby.log" "standby promoted to primary" "standby never took over"
wait_log "$tmp/standby.log" "restored .* session" "standby restored no placements"

if ! wait "$push_pid"; then
    echo "ha-smoke: push did not survive replica kill + journal wipe + gateway kill" >&2
    sed 's/^/  push: /' "$tmp/push.log" >&2
    sed 's/^/  gateway: /' "$tmp/gateway.log" >&2
    sed 's/^/  standby: /' "$tmp/standby.log" >&2
    exit 1
fi

echo "== verdict through both failures must equal the single-node golden =="
diff -u "$tmp/golden.out" "$tmp/ha.push.out" || {
    echo "ha-smoke: session verdict diverged from single-node run" >&2
    exit 1
}

echo "== batch upload through the promoted standby must match too =="
"$tmp/soundboost" push -addr "http://$gw_addr" -flight "$tmp/incident.sbf" \
    -mode batch > "$tmp/ha.batch.out"
diff -u "$tmp/golden.out" "$tmp/ha.batch.out" || {
    echo "ha-smoke: batch verdict via standby diverged from single-node run" >&2
    exit 1
}
grep -h "failed over\|follower copy\|promoted" "$tmp/gateway.log" "$tmp/standby.log" | sed 's/^/  /' || true

echo "== graceful drain of the promoted standby and surviving replicas =="
kill -TERM "$sb_pid"
wait "$sb_pid" || {
    echo "ha-smoke: standby gateway drain failed" >&2
    cat "$tmp/standby.log" >&2
    exit 1
}
for n in 1 2 3; do
    eval "p=\$pid_r$n"
    [ "r$n" = "$owner" ] && continue
    kill -TERM "$p"
    wait "$p" || {
        echo "ha-smoke: replica r$n drain failed" >&2
        cat "$tmp/serve$n.log" >&2
        exit 1
    }
done
pids=""

echo "ha-smoke: OK"
