#!/bin/sh
# sweep_smoke.sh — end-to-end smoke test of the sweep grid runner
# against a live server: generate a reduced-rate corpus with flightgen,
# train + calibrate with the soundboost CLI, start `soundboost serve`,
# then run the same 3x3 sweep (attack families x chunk sizes, seed 42)
# twice over real HTTP. The two runs must be byte-identical — JSONL
# records, CSV summary, and rollup — and the rollup's confusion
# matrices must match the pinned golden below, making this a CI gate on
# detection accuracy: a detector change that moves a verdict shows up
# as a diff here, not as silent drift. Everything runs in a throwaway
# temp directory. Run from the repo root, or via `make sweep-smoke`.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

addr=127.0.0.1:18714

echo "== generate corpus (reduced rate) =="
seed=1
for mission in hover dash column; do
    for rep in 1 2; do
        go run ./cmd/flightgen -fast -out "$tmp/train" -mission "$mission" \
            -seconds 14 -seed $seed -name "$mission-benign-$seed"
        seed=$((seed + 7))
    done
done

echo "== build + train + calibrate =="
go build -o "$tmp/soundboost" ./cmd/soundboost
"$tmp/soundboost" train -flights "$tmp/train" -model "$tmp/model.json" \
    -hidden 48 -epochs 100 -augment 0
"$tmp/soundboost" calibrate -model "$tmp/model.json" \
    -calib "$tmp/train" -out "$tmp/analyzer.json"

echo "== start soundboost serve =="
"$tmp/soundboost" serve -analyzer "$tmp/analyzer.json" -addr "$addr" &
server_pid=$!
ready=0
i=0
while [ $i -lt 100 ]; do
    if curl -fsS "http://$addr/v1/healthz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    kill -0 "$server_pid" 2>/dev/null || {
        echo "sweep-smoke: server exited before becoming ready" >&2
        exit 1
    }
    sleep 0.2
    i=$((i + 1))
done
[ "$ready" = 1 ] || { echo "sweep-smoke: server never became ready" >&2; exit 1; }

echo "== sweep twice (3 attacks x 3 chunk sizes, seed 42) =="
for run in 1 2; do
    "$tmp/soundboost" sweep -addr "http://$addr" \
        -attacks benign,gps-drift,imu-dos -chunks 1,2,4 \
        -seconds 16 -seed 42 -concurrency 4 \
        -jsonl "$tmp/sweep$run.jsonl" -csv "$tmp/sweep$run.csv" \
        > "$tmp/sweep$run.rollup.json"
done

echo "== diff: same seed must be byte-identical =="
for f in jsonl csv rollup.json; do
    diff -u "$tmp/sweep1.$f" "$tmp/sweep2.$f" || {
        echo "sweep-smoke: seed-42 runs diverged in $f" >&2
        exit 1
    }
done

echo "== confusion-matrix gate (pinned) =="
# The pinned rollup for this corpus + grid: every attack flight is
# detected in every chunk cell, no benign false alarms, and every
# root cause is attributed to the right sensor. A regression in the
# detectors, the chunker, or the streaming engine moves these counts.
cat > "$tmp/want.rollup.json" <<'EOF'
{
  "schema_version": "sweep/v2",
  "trials": 9,
  "flights": 3,
  "pooled": {
    "tp": 6,
    "fp": 0,
    "tn": 3,
    "fn": 0,
    "tpr": 1,
    "fpr": 0
  },
  "session_disjoint": {
    "tp": 2,
    "fp": 0,
    "tn": 1,
    "fn": 0,
    "tpr": 1,
    "fpr": 0
  },
  "attribution": {
    "correct": 9,
    "total": 9,
    "accuracy": 1
  },
  "gps_auc": 1
}
EOF
diff -u "$tmp/want.rollup.json" "$tmp/sweep1.rollup.json" || {
    echo "sweep-smoke: rollup diverged from the pinned confusion matrix" >&2
    exit 1
}

echo "== graceful drain (SIGTERM) =="
kill -TERM "$server_pid"
drained=0
i=0
while [ $i -lt 100 ]; do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        drained=1
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
[ "$drained" = 1 ] || { echo "sweep-smoke: server did not drain on SIGTERM" >&2; exit 1; }
wait "$server_pid" || { echo "sweep-smoke: server exited non-zero after drain" >&2; exit 1; }
server_pid=""

echo "sweep-smoke: OK"
