#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the multi-session RCA
# service: generate a reduced-rate corpus with flightgen, train +
# calibrate with the soundboost CLI, start `soundboost serve`, and drive
# an incident flight through all three analysis paths — offline
# `soundboost rca`, HTTP batch upload, and a chunked streaming session —
# requiring byte-identical verdicts from each. Finishes by exercising
# the SIGTERM graceful drain. Everything runs in a throwaway temp
# directory; total runtime is a few seconds (the -fast preset keeps
# audio at 4 kHz).
# Run from the repo root, or via `make serve-smoke`.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

addr=127.0.0.1:18713

echo "== generate corpus (reduced rate) =="
seed=1
for mission in hover dash column; do
    for rep in 1 2; do
        go run ./cmd/flightgen -fast -out "$tmp/train" -mission "$mission" \
            -seconds 14 -seed $seed -name "$mission-benign-$seed"
        seed=$((seed + 7))
    done
done
go run ./cmd/flightgen -fast -out "$tmp" -mission hover -seconds 20 -seed 99 \
    -name benign-incident
go run ./cmd/flightgen -fast -out "$tmp" -mission hover -seconds 20 -seed 99 \
    -attack gps-drift -attack-start 6 -attack-end 18 -offset-x 24 \
    -name spoofed-incident

echo "== build + train + calibrate =="
go build -o "$tmp/soundboost" ./cmd/soundboost
"$tmp/soundboost" train -flights "$tmp/train" -model "$tmp/model.json" \
    -hidden 48 -epochs 100 -augment 0
"$tmp/soundboost" calibrate -model "$tmp/model.json" \
    -calib "$tmp/train" -out "$tmp/analyzer.json"

echo "== offline verdicts (soundboost rca) =="
for f in benign-incident spoofed-incident; do
    "$tmp/soundboost" rca -analyzer "$tmp/analyzer.json" \
        -flight "$tmp/$f.sbf" > "$tmp/$f.rca.out"
done

echo "== start soundboost serve =="
"$tmp/soundboost" serve -analyzer "$tmp/analyzer.json" -addr "$addr" &
server_pid=$!
ready=0
i=0
while [ $i -lt 100 ]; do
    if curl -fsS "http://$addr/v1/healthz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    kill -0 "$server_pid" 2>/dev/null || {
        echo "serve-smoke: server exited before becoming ready" >&2
        exit 1
    }
    sleep 0.2
    i=$((i + 1))
done
[ "$ready" = 1 ] || { echo "serve-smoke: server never became ready" >&2; exit 1; }
echo "healthz: $(curl -fsS "http://$addr/v1/healthz")"

echo "== HTTP batch + streaming-session verdicts (soundboost push) =="
for f in benign-incident spoofed-incident; do
    "$tmp/soundboost" push -addr "http://$addr" -flight "$tmp/$f.sbf" \
        -mode batch > "$tmp/$f.batch.out"
    "$tmp/soundboost" push -addr "http://$addr" -flight "$tmp/$f.sbf" \
        -mode session -chunk 2 > "$tmp/$f.session.out"
done

echo "== diff: offline vs batch vs session =="
for f in benign-incident spoofed-incident; do
    diff -u "$tmp/$f.rca.out" "$tmp/$f.batch.out" || {
        echo "serve-smoke: $f batch verdict diverged from offline rca" >&2
        exit 1
    }
    diff -u "$tmp/$f.rca.out" "$tmp/$f.session.out" || {
        echo "serve-smoke: $f session verdict diverged from offline rca" >&2
        exit 1
    }
done
grep -q "root cause: none" "$tmp/benign-incident.rca.out" || {
    echo "serve-smoke: benign incident did not report 'root cause: none'" >&2
    exit 1
}
grep -q "root cause: gps" "$tmp/spoofed-incident.rca.out" || {
    echo "serve-smoke: spoofed incident did not report 'root cause: gps'" >&2
    exit 1
}

echo "== graceful drain (SIGTERM) =="
kill -TERM "$server_pid"
drained=0
i=0
while [ $i -lt 100 ]; do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        drained=1
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
[ "$drained" = 1 ] || { echo "serve-smoke: server did not drain on SIGTERM" >&2; exit 1; }
wait "$server_pid" || { echo "serve-smoke: server exited non-zero after drain" >&2; exit 1; }
server_pid=""

echo "serve-smoke: OK"
