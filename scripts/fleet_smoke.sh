#!/bin/sh
# fleet_smoke.sh — end-to-end exercise of the sharded fleet: three
# `soundboost serve` replicas behind one consistent-hash gateway, with a
# replica SIGKILLed mid-upload.
#
#   1. Generate a reduced-rate corpus, train and calibrate (same -fast
#      preset as serve_smoke.sh).
#   2. Record the single-node golden: offline `soundboost rca` over the
#      incident flight (serve_smoke.sh pins streaming == batch == rca,
#      so rca IS the unsharded verdict).
#   3. Start three journaled serve replicas and a gateway over them.
#   4. Push the incident through the gateway as a chunked streaming
#      session; read the session's placement from the gateway log and
#      SIGKILL that replica mid-flight. The gateway must migrate the
#      session onto a successor by replaying its journal, absorb the
#      client's resend as a duplicate, and finish the stream there.
#   5. The fleet verdict must be byte-identical to the single-node
#      golden. A batch upload through the gateway must match too.
#   6. TERM the gateway and surviving replicas; drains must succeed.
#
# FLEET_BUILDFLAGS=-race runs every binary under the race detector.
# Everything runs in a throwaway temp directory. Run from the repo root,
# or via `make fleet-smoke`.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

gw_addr=127.0.0.1:18712

echo "== generate corpus (reduced rate) =="
seed=1
for mission in hover dash column; do
    for rep in 1 2; do
        go run ./cmd/flightgen -fast -out "$tmp/train" -mission "$mission" \
            -seconds 14 -seed $seed -name "$mission-benign-$seed"
        seed=$((seed + 7))
    done
done
go run ./cmd/flightgen -fast -out "$tmp" -mission hover -seconds 20 -seed 99 \
    -name incident

echo "== build + train + calibrate =="
# Unquoted on purpose so FLEET_BUILDFLAGS word-splits (e.g. -race).
go build ${FLEET_BUILDFLAGS:-} -o "$tmp/soundboost" ./cmd/soundboost
"$tmp/soundboost" train -flights "$tmp/train" -model "$tmp/model.json" \
    -hidden 48 -epochs 100 -augment 0
"$tmp/soundboost" calibrate -model "$tmp/model.json" \
    -calib "$tmp/train" -out "$tmp/analyzer.json"

echo "== single-node golden verdict =="
"$tmp/soundboost" rca -analyzer "$tmp/analyzer.json" \
    -flight "$tmp/incident.sbf" > "$tmp/golden.out"

wait_healthz() {
    i=0
    while [ $i -lt 100 ]; do
        if curl -fsS "http://$1/v1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
        i=$((i + 1))
    done
    echo "fleet-smoke: $2 never became ready on $1" >&2
    exit 1
}

echo "== start 3 journaled replicas + gateway =="
replica_flags=""
for n in 1 2 3; do
    addr=127.0.0.1:$((18712 + n))
    "$tmp/soundboost" serve -analyzer "$tmp/analyzer.json" -addr "$addr" \
        -journal "$tmp/journal$n" > "$tmp/serve$n.log" 2>&1 &
    eval "pid_r$n=$!"
    pids="$pids $!"
    replica_flags="$replica_flags -replica r$n=http://$addr=$tmp/journal$n"
done
for n in 1 2 3; do
    wait_healthz "127.0.0.1:$((18712 + n))" "replica r$n"
done
# shellcheck disable=SC2086 # replica_flags must word-split
"$tmp/soundboost" gateway -addr "$gw_addr" -probe 200ms $replica_flags \
    > "$tmp/gateway.log" 2>&1 &
gw_pid=$!
pids="$pids $gw_pid"
wait_healthz "$gw_addr" "gateway"

echo "== stream through the gateway; SIGKILL the owning replica mid-flight =="
# -pace keeps the upload in flight for several seconds (20 one-second
# chunks at 150ms spacing) so the kill below reliably lands mid-stream.
"$tmp/soundboost" push -addr "http://$gw_addr" -flight "$tmp/incident.sbf" \
    -mode session -chunk 1 -pace 150ms -retries 30 -retry-base 300ms \
    > "$tmp/fleet.push.out" 2> "$tmp/push.log" &
push_pid=$!
# The gateway logs each placement as "session g-XXXXXXXX -> rN/s-...".
owner=""
i=0
while [ $i -lt 50 ]; do
    owner=$(sed -n 's/.*session g-[0-9]* -> \(r[0-9]*\)\/.*/\1/p' "$tmp/gateway.log" | head -1)
    [ -n "$owner" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$owner" ]; then
    echo "fleet-smoke: no session placement in gateway log" >&2
    cat "$tmp/gateway.log" >&2
    exit 1
fi
sleep 0.5
eval "owner_pid=\$pid_$(echo "$owner" | tr -cd 'r0-9')"
echo "  session placed on $owner (pid $owner_pid); killing it"
kill -9 "$owner_pid"
wait "$owner_pid" 2>/dev/null || true

if ! wait "$push_pid"; then
    echo "fleet-smoke: push did not survive the replica kill" >&2
    sed 's/^/  push: /' "$tmp/push.log" >&2
    sed 's/^/  gateway: /' "$tmp/gateway.log" >&2
    exit 1
fi
grep -q "failed over $owner" "$tmp/gateway.log" || {
    echo "fleet-smoke: gateway log records no failover off $owner" >&2
    cat "$tmp/gateway.log" >&2
    exit 1
}

echo "== fleet verdict must equal the single-node golden =="
diff -u "$tmp/golden.out" "$tmp/fleet.push.out" || {
    echo "fleet-smoke: fleet session verdict diverged from single-node run" >&2
    exit 1
}

echo "== batch upload through the gateway must match too =="
"$tmp/soundboost" push -addr "http://$gw_addr" -flight "$tmp/incident.sbf" \
    -mode batch > "$tmp/fleet.batch.out"
diff -u "$tmp/golden.out" "$tmp/fleet.batch.out" || {
    echo "fleet-smoke: fleet batch verdict diverged from single-node run" >&2
    exit 1
}
grep -h "failed over" "$tmp/gateway.log" | sed 's/^/  /' || true

echo "== graceful drain of gateway and surviving replicas =="
kill -TERM "$gw_pid"
wait "$gw_pid" || {
    echo "fleet-smoke: gateway drain failed" >&2
    cat "$tmp/gateway.log" >&2
    exit 1
}
for n in 1 2 3; do
    eval "p=\$pid_r$n"
    [ "r$n" = "$owner" ] && continue
    kill -TERM "$p"
    wait "$p" || {
        echo "fleet-smoke: replica r$n drain failed" >&2
        cat "$tmp/serve$n.log" >&2
        exit 1
    }
done
pids=""

echo "fleet-smoke: OK"
