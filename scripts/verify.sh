#!/bin/sh
# verify.sh — the repository's full verification gate:
#   gofmt (fail on any unformatted file), go vet, staticcheck, build,
#   race-enabled tests (uncached: -count=1 avoids cached-test false greens),
#   and the seeded chaos soak (scripts/chaos_smoke.sh).
# Run from the repo root, or via `make verify`.
#
# `verify.sh -short` skips the chaos soak — it trains a model and soaks
# the service (~minutes), so the short form keeps the edit loop fast. CI
# runs the soak in its own job (under -race) and the short gate here.
#
# staticcheck is enforced when the binary is present (and always in CI,
# where the workflow installs it); locally it downgrades to a warning so
# the gate stays dependency-free.
#
# Performance is gated separately: `make bench-gate` compares a fresh
# throughput bench against the newest committed BENCH_<n>.json
# (scripts/bench_gate.sh; CI runs it in the bench-gate job).
set -eu

cd "$(dirname "$0")/.."

short=0
for arg in "$@"; do
    case "$arg" in
    -short) short=1 ;;
    *)
        echo "usage: verify.sh [-short]" >&2
        exit 2
        ;;
    esac
done

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
elif [ -n "${CI:-}" ]; then
    echo "staticcheck: required in CI but not installed" >&2
    exit 1
else
    echo "warning: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

echo "== go build =="
go build ./...

echo "== go test -race -count=1 =="
go test -race -count=1 ./...

if [ "$short" -eq 1 ]; then
    echo "== chaos smoke (skipped: -short) =="
else
    echo "== chaos smoke =="
    sh scripts/chaos_smoke.sh
fi

echo "verify: OK"
