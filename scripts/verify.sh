#!/bin/sh
# verify.sh — the repository's full verification gate:
#   gofmt (fail on any unformatted file), go vet, build, race-enabled tests.
# Run from the repo root, or via `make verify`.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "verify: OK"
