package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	soundboost "soundboost/internal/core"
	"soundboost/internal/kalman"
	"soundboost/internal/mathx"
	"soundboost/internal/stream"
)

var update = flag.Bool("update", false, "rewrite the golden schema snapshot")

// sampleCoreReport populates every field with a distinct non-zero value
// so a dropped or swapped field cannot round-trip cleanly.
func sampleCoreReport() soundboost.Report {
	return soundboost.Report{
		Flight: "incident-17",
		Cause:  soundboost.CauseIMUAndGPS,
		IMU: soundboost.IMUVerdict{
			Attacked:        true,
			DetectionTime:   6.25,
			WindowsTested:   40,
			WindowsRejected: 11,
			AttackStd:       3.5,
		},
		GPS: soundboost.GPSVerdict{
			Attacked:      true,
			DetectionTime: 9.75,
			PeakError:     2.125,
			Threshold:     1.0625,
		},
		GPSMode:   kalman.ModeAudioOnly,
		Precision: soundboost.Float32,
	}
}

// TestReportRoundTrip is the conversion contract: internal Report →
// v1 JSON → internal Report is the identity, through the actual wire
// bytes with strict decoding.
func TestReportRoundTrip(t *testing.T) {
	want := sampleCoreReport()
	wire := ReportFromCore(want)
	if wire.SchemaVersion != Version {
		t.Errorf("SchemaVersion = %q, want %q", wire.SchemaVersion, Version)
	}
	raw, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := DecodeStrict(bytes.NewReader(raw), &decoded); err != nil {
		t.Fatalf("strict decode of our own wire form: %v", err)
	}
	if got := decoded.ToCore(); !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestReportPrecisionWire pins the precision fields' wire behaviour:
// float32 reports carry the mode and its documented tolerance; float64
// reports name their mode but omit the zero tolerance; reports from
// code predating the field (zero-value Precision) omit both, so their
// serialized bytes are identical to the pre-field schema.
func TestReportPrecisionWire(t *testing.T) {
	r := sampleCoreReport()
	r.Precision = soundboost.Float32
	raw, err := json.Marshal(ReportFromCore(r))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"precision":"float32"`) {
		t.Errorf("float32 report missing precision field: %s", raw)
	}
	if !strings.Contains(string(raw), `"tolerance":0.001`) {
		t.Errorf("float32 report missing tolerance field: %s", raw)
	}
	r.Precision = soundboost.Float64
	raw, err = json.Marshal(ReportFromCore(r))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"precision":"float64"`) {
		t.Errorf("float64 report missing precision field: %s", raw)
	}
	if strings.Contains(string(raw), "tolerance") {
		t.Errorf("float64 report must omit the zero tolerance: %s", raw)
	}
	r.Precision = ""
	raw, err = json.Marshal(ReportFromCore(r))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "precision") || strings.Contains(string(raw), "tolerance") {
		t.Errorf("zero-precision report must omit precision/tolerance: %s", raw)
	}
	var decoded Report
	if err := DecodeStrict(bytes.NewReader(raw), &decoded); err != nil {
		t.Fatalf("strict decode: %v", err)
	}
	if got := decoded.ToCore().Precision; got != "" {
		t.Errorf("omitted precision decoded as %q, want the zero value", got)
	}
}

func TestEngineStatusRoundTrip(t *testing.T) {
	want := stream.Status{
		LastWindowEnd: 12.5,
		Windows:       48,
		Skipped:       3,
		IMUAttacked:   true,
		GPSAttacked:   true,
		ActiveMode:    kalman.ModeAudioOnly,
		RunningError:  0.75,
		PeakError:     2.25,
		Threshold:     1.125,
	}
	raw, err := json.Marshal(EngineStatusFromStream(want))
	if err != nil {
		t.Fatal(err)
	}
	var decoded EngineStatus
	if err := DecodeStrict(bytes.NewReader(raw), &decoded); err != nil {
		t.Fatal(err)
	}
	if got := decoded.ToStream(); !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestTelemetryRoundTrip(t *testing.T) {
	frame := stream.AudioFrame{Start: 0.25, Rate: 4000, Samples: [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}}
	if got := AudioFrameFromStream(frame).ToStream(); !reflect.DeepEqual(got, frame) {
		t.Errorf("audio frame round trip: %+v != %+v", got, frame)
	}
	imu := stream.IMUSample{
		Time:  1.5,
		Accel: mathx.Vec3{X: 1, Y: 2, Z: 3},
		Gyro:  mathx.Vec3{X: 4, Y: 5, Z: 6},
		Att:   mathx.Quat{W: 0.5, X: 0.5, Y: 0.5, Z: 0.5},
	}
	if got := IMUSampleFromStream(imu).ToStream(); !reflect.DeepEqual(got, imu) {
		t.Errorf("IMU sample round trip: %+v != %+v", got, imu)
	}
	gps := stream.GPSSample{
		Time: 2.5,
		Pos:  mathx.Vec3{X: 7, Y: 8, Z: 9},
		Vel:  mathx.Vec3{X: 10, Y: 11, Z: 12},
	}
	if got := GPSSampleFromStream(gps).ToStream(); !reflect.DeepEqual(got, gps) {
		t.Errorf("GPS sample round trip: %+v != %+v", got, gps)
	}
}

func TestDecodeStrictRejectsUnknownFields(t *testing.T) {
	var req SessionRequest
	err := DecodeStrict(strings.NewReader(`{"sample_rate_hz": 4000, "bogus_field": 1}`), &req)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), "bogus_field") {
		t.Errorf("error %q does not name the offending field", err)
	}
}

func TestDecodeStrictRejectsTrailingData(t *testing.T) {
	var req SessionRequest
	err := DecodeStrict(strings.NewReader(`{"sample_rate_hz": 4000}{"sample_rate_hz": 8000}`), &req)
	if err == nil {
		t.Fatal("trailing JSON value accepted")
	}
}

func TestDecodeStrictAcceptsValid(t *testing.T) {
	var req FramesRequest
	body := `{"audio":[{"start_seconds":0,"rate_hz":4000,"samples":[[0.1],[0.2],[0.3],[0.4]]}],` +
		`"imu":[{"time_seconds":0,"accel":{"x":0,"y":0,"z":-9.8},"gyro":{"x":0,"y":0,"z":0},"att":{"w":1,"x":0,"y":0,"z":0}}],` +
		`"gps":[{"time_seconds":0,"pos":{"x":0,"y":0,"z":-10},"vel":{"x":0,"y":0,"z":0}}],"close":true}`
	if err := DecodeStrict(strings.NewReader(body), &req); err != nil {
		t.Fatalf("valid frames body rejected: %v", err)
	}
	if len(req.Audio) != 1 || len(req.IMU) != 1 || len(req.GPS) != 1 || !req.Close {
		t.Errorf("decoded request lost content: %+v", req)
	}
}

// schemaSamples returns one canonically populated instance of every wire
// type, keyed by type name. The golden file pins its serialized shape.
func schemaSamples() map[string]any {
	wireReport := ReportFromCore(sampleCoreReport())
	status := SessionStatus{
		SchemaVersion: Version,
		ID:            "s-0001",
		Flight:        "incident-17",
		State:         SessionDraining,
		AgeSeconds:    30.5,
		IdleSeconds:   1.25,
		Shed:          2,
		Engine: EngineStatus{
			LastWindowEndSeconds: 12.5,
			Windows:              48,
			Skipped:              3,
			IMUAttacked:          true,
			GPSAttacked:          true,
			ActiveKFMode:         string(kalman.ModeAudioOnly),
			RunningError:         0.75,
			PeakError:            2.25,
			Threshold:            1.125,
		},
	}
	return map[string]any{
		"Error":  Error{Code: CodeConflict, Error: "session already closed"},
		"Health": Health{SchemaVersion: Version, Status: "ok", ActiveSessions: 3, SessionCap: 64, JobsInFlight: 1, JobCap: 4},
		"Report": wireReport,
		"FlightResponse": FlightResponse{
			Report:         wireReport,
			ElapsedSeconds: 0.5,
		},
		"SessionRequest": SessionRequest{
			Flight:            "incident-17",
			SampleRateHz:      4000,
			Buffer:            8192,
			LagHorizonSeconds: 5,
			GapFill:           true,
			Precision:         string(soundboost.Float32),
		},
		"SessionResponse": SessionResponse{SchemaVersion: Version, ID: "s-0001", State: SessionOpen},
		"FramesRequest": FramesRequest{
			Audio: []AudioFrame{{StartSeconds: 0.25, RateHz: 4000, Samples: [][]float64{{0.5}, {0.25}, {0.125}, {0.0625}}}},
			IMU: []IMUSample{{
				TimeSeconds: 0.25,
				Accel:       Vec3{X: 1, Y: 2, Z: 3},
				Gyro:        Vec3{X: 4, Y: 5, Z: 6},
				Att:         Quat{W: 0.5, X: 0.5, Y: 0.5, Z: 0.5},
			}},
			GPS: []GPSSample{{
				TimeSeconds: 0.25,
				Pos:         Vec3{X: 7, Y: 8, Z: 9},
				Vel:         Vec3{X: 10, Y: 11, Z: 12},
			}},
			Close: true,
		},
		"FramesResponse": FramesResponse{SchemaVersion: Version, Accepted: 42, Shed: 1, State: SessionDone},
		"SessionStatus":  status,
		"JournalAppend": JournalAppend{
			SchemaVersion: Version,
			Seq:           3,
			Request:       SessionRequest{Flight: "incident-17", SampleRateHz: 4000},
			Chunk:         FramesRequest{Seq: 3, IMU: []IMUSample{{TimeSeconds: 0.75}}},
		},
		"JournalAppendResponse": JournalAppendResponse{
			SchemaVersion: Version,
			ID:            "g-00000001",
			LastSeq:       3,
		},
		"SessionJournal": SessionJournal{
			SchemaVersion: Version,
			ID:            "s-0001",
			Request:       SessionRequest{Flight: "incident-17", SampleRateHz: 4000},
			State:         SessionOpen,
			LastSeq:       2,
			Chunks: []FramesRequest{
				{Seq: 1, IMU: []IMUSample{{TimeSeconds: 0.25}}},
				{Seq: 2, GPS: []GPSSample{{TimeSeconds: 0.5}}},
			},
		},
	}
}

// TestSchemaGolden pins the wire format: any change to a DTO's
// serialized shape fails here until the golden file is regenerated with
// -update — and per the versioning rules, an incompatible change also
// requires bumping Version.
func TestSchemaGolden(t *testing.T) {
	doc := struct {
		Version string         `json:"version"`
		Types   map[string]any `json:"types"`
	}{Version: Version, Types: schemaSamples()}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", Version+"_schema.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with `go test ./api -run TestSchemaGolden -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire schema drifted from %s.\nIf this change is intentional and backward compatible, regenerate with -update.\nIf it renames/removes/repurposes a field, bump api.Version first.\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
