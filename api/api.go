// Package api is SoundBoost's public wire contract: the
// schema-versioned request and response bodies served by `soundboost
// serve` under the /v1 path prefix. Internal structs (core.Report,
// stream.Status, …) keep evolving freely; everything that crosses the
// network is one of the DTOs below, converted in this package and
// nowhere else, so a wire change is always a deliberate, reviewed event.
//
// Versioning rules (see DESIGN.md "API versioning"):
//
//   - Version names the wire schema and prefixes every route (/v1/...).
//     Responses echo it in schema_version.
//   - Adding a field is backward compatible and allowed within a
//     version; renaming, removing, or changing the meaning or unit of a
//     field is not — it requires bumping Version and serving the new
//     schema under a new path prefix.
//   - The golden schema snapshot (testdata/v1_schema.golden.json,
//     enforced by TestSchemaGolden) pins the serialized shape of every
//     DTO; it fails on any drift so the version bump cannot be skipped
//     accidentally.
//   - Requests are decoded strictly: unknown fields are rejected, so
//     client typos fail loudly instead of being silently ignored.
//
// Field conventions: JSON keys are snake_case; times and durations are
// float64 flight-seconds with a _seconds suffix; rates carry _hz.
package api

// Version is the wire schema version, also used as the route prefix
// ("/" + Version + "/...").
const Version = "v1"

// Causes attributable by the RCA pipeline, as serialized in
// Report.Cause.
const (
	CauseNone      = "none"
	CauseIMU       = "imu"
	CauseGPS       = "gps"
	CauseIMUAndGPS = "imu+gps"
)

// Session lifecycle states, as serialized in SessionStatus.State (see
// DESIGN.md "Session lifecycle").
const (
	// SessionOpen accepts frames.
	SessionOpen = "open"
	// SessionDraining has seen end-of-stream (explicit close, idle
	// timeout, or hard deadline) and is finalizing its verdict.
	SessionDraining = "draining"
	// SessionDone holds a final report until evicted.
	SessionDone = "done"
	// SessionFailed is terminal: the session's engine goroutine panicked
	// or errored fatally. The failure is isolated to this session — the
	// recorded cause is available in SessionStatus.FailCause and from
	// GET .../report — and every other session is unaffected.
	SessionFailed = "failed"
)

// Error codes carried by Error.Code, the machine-readable counterpart
// of the HTTP status.
const (
	CodeBadRequest       = "bad_request"          // 400: malformed or unknown-field body
	CodeNotFound         = "not_found"            // 404: unknown route or session id
	CodeConflict         = "conflict"             // 409: operation illegal in the session's state
	CodeUnprocessable    = "unprocessable"        // 422: parsed but unusable payload
	CodeCapacity         = "capacity"             // 429: session table or worker pool full
	CodeInternal         = "internal"             // 500: server-side failure
	CodeShuttingDown     = "shutting_down"        // 503: server is draining
	CodeMethodNotAllowed = "method_not_allowed"   // 405: wrong method on a known route
	CodeSessionFailed    = "session_failed"       // 500: the session's engine died; cause recorded
	CodeTimeout          = "timeout"              // 503: analysis exceeded its deadline and was shed
	CodeUpstream         = "upstream_unavailable" // 503: fleet gateway found no reachable replica
)

// Error is the body of every non-2xx response.
type Error struct {
	// Code is the machine-readable error category (Code* constants).
	Code string `json:"code"`
	// Error is a human-readable description.
	Error string `json:"error"`
}

// Health is the GET /v1/healthz response.
type Health struct {
	SchemaVersion string `json:"schema_version"`
	// Status is "ok" while serving, "draining" during graceful shutdown.
	Status string `json:"status"`
	// ActiveSessions / SessionCap describe session-table occupancy.
	ActiveSessions int `json:"active_sessions"`
	SessionCap     int `json:"session_cap"`
	// JobsInFlight / JobCap describe the batch analysis worker pool.
	JobsInFlight int `json:"jobs_in_flight"`
	JobCap       int `json:"job_cap"`
}

// IMUVerdict is the stage-1 verdict on the wire.
type IMUVerdict struct {
	Attacked bool `json:"attacked"`
	// DetectionSeconds is the flight time of the first alarmed window
	// (valid when Attacked).
	DetectionSeconds float64 `json:"detection_seconds"`
	WindowsTested    int     `json:"windows_tested"`
	WindowsRejected  int     `json:"windows_rejected"`
	// AttackStd is the residual standard deviation over rejected
	// windows, 0 when benign.
	AttackStd float64 `json:"attack_std"`
}

// GPSVerdict is the stage-2 verdict on the wire.
type GPSVerdict struct {
	Attacked bool `json:"attacked"`
	// DetectionSeconds is the flight time when the running error first
	// crossed the threshold (valid when Attacked).
	DetectionSeconds float64 `json:"detection_seconds"`
	PeakError        float64 `json:"peak_error"`
	Threshold        float64 `json:"threshold"`
}

// Report is the RCA outcome on the wire — returned by POST /v1/flights
// and GET /v1/sessions/{id}/report.
type Report struct {
	SchemaVersion string `json:"schema_version"`
	Flight        string `json:"flight"`
	// Cause is one of the Cause* constants.
	Cause string     `json:"cause"`
	IMU   IMUVerdict `json:"imu"`
	GPS   GPSVerdict `json:"gps"`
	// GPSMode is the KF variant stage 2 used ("audio-only" when the IMU
	// was flagged, "audio+imu" otherwise).
	GPSMode string `json:"gps_mode"`
	// Precision is the arithmetic the signature/inference hot path ran
	// under: "float64" (the exact default) or "float32" (the opt-in fast
	// path). Omitted by servers predating the field, which only ever ran
	// float64.
	Precision string `json:"precision,omitempty"`
	// Tolerance is the documented per-feature absolute error bound of
	// the precision mode relative to exact float64 — 0 for float64
	// itself, so it is omitted there.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// FlightResponse is the POST /v1/flights response: the batch report for
// the uploaded recording.
type FlightResponse struct {
	Report Report `json:"report"`
	// ElapsedSeconds is the server-side analysis wall time.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// SessionRequest is the POST /v1/sessions body.
type SessionRequest struct {
	// Flight labels the session's report.
	Flight string `json:"flight,omitempty"`
	// SampleRateHz is the audio sample rate of the incoming frames
	// (required; it must satisfy the calibrated model's layout).
	SampleRateHz float64 `json:"sample_rate_hz"`
	// Buffer is the per-topic subscription depth (0 = server default).
	Buffer int `json:"buffer,omitempty"`
	// LagHorizonSeconds bounds how far audio may outrun telemetry
	// before windows are shed (0 = engine default).
	LagHorizonSeconds float64 `json:"lag_horizon_seconds,omitempty"`
	// GapFill processes dropout windows from zero-filled audio instead
	// of skipping them.
	GapFill bool `json:"gap_fill,omitempty"`
	// Precision selects the arithmetic of the session's hot path:
	// "float64" (default, also for the empty string) or "float32" (the
	// opt-in fast path; the session's report echoes the mode and its
	// tolerance). Unknown values are rejected with 422.
	Precision string `json:"precision,omitempty"`
}

// SessionResponse is the POST /v1/sessions response.
type SessionResponse struct {
	SchemaVersion string `json:"schema_version"`
	// ID addresses the session in every /v1/sessions/{id}/... route.
	ID    string `json:"id"`
	State string `json:"state"`
}

// AudioFrame is one contiguous chunk of the microphone-array recording.
type AudioFrame struct {
	// StartSeconds is the capture time of the first sample.
	StartSeconds float64 `json:"start_seconds"`
	RateHz       float64 `json:"rate_hz"`
	// Samples holds per-microphone chunks of equal length.
	Samples [][]float64 `json:"samples"`
}

// Vec3 is a 3-vector in NED or body frame depending on the field.
type Vec3 struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// Quat is a unit quaternion attitude (w, x, y, z).
type Quat struct {
	W float64 `json:"w"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// IMUSample is one inertial row.
type IMUSample struct {
	TimeSeconds float64 `json:"time_seconds"`
	// Accel is the accelerometer specific force (body frame).
	Accel Vec3 `json:"accel"`
	// Gyro is the gyroscope rate (body frame).
	Gyro Vec3 `json:"gyro"`
	// Att is the autopilot attitude estimate.
	Att Quat `json:"att"`
}

// GPSSample is one GPS fix (NED).
type GPSSample struct {
	TimeSeconds float64 `json:"time_seconds"`
	Pos         Vec3    `json:"pos"`
	Vel         Vec3    `json:"vel"`
}

// FramesRequest is the POST /v1/sessions/{id}/frames body: a batch of
// telemetry to feed the session's engine. Within each stream, items must
// be time-ordered across requests (the engine sheds regressions); the
// three streams are merged by timestamp before publication.
type FramesRequest struct {
	// Seq is the request's 1-based position in the session's chunk
	// stream, used for idempotent resend: a request whose Seq the server
	// has already accepted is acknowledged without re-publishing
	// (FramesResponse.Duplicate), so a client that lost an ack can
	// safely retry; a Seq that skips ahead is rejected with 409. Seq 0
	// opts out of idempotency (and of journal-backed session resume).
	Seq int `json:"seq,omitempty"`

	Audio []AudioFrame `json:"audio,omitempty"`
	IMU   []IMUSample  `json:"imu,omitempty"`
	GPS   []GPSSample  `json:"gps,omitempty"`
	// Close marks end-of-stream after this batch: the session drains,
	// finalizes its verdict, and moves to "done".
	Close bool `json:"close,omitempty"`
}

// FramesResponse is the POST /v1/sessions/{id}/frames response.
type FramesResponse struct {
	SchemaVersion string `json:"schema_version"`
	// Accepted counts the messages published to the session bus.
	Accepted int `json:"accepted"`
	// Shed counts session-lifetime bus messages dropped by
	// backpressure; a nonzero value means the client is outrunning the
	// engine and the verdict may no longer match a batch run.
	Shed  int    `json:"shed"`
	State string `json:"state"`
	// Duplicate reports that the request's Seq was already accepted and
	// nothing was re-published — the expected outcome of an idempotent
	// resend after a lost ack.
	Duplicate bool `json:"duplicate,omitempty"`
}

// EngineStatus is the live engine snapshot inside SessionStatus.
type EngineStatus struct {
	// LastWindowEndSeconds is the end time of the newest processed
	// window.
	LastWindowEndSeconds float64 `json:"last_window_end_seconds"`
	Windows              int     `json:"windows"`
	Skipped              int     `json:"skipped"`
	IMUAttacked          bool    `json:"imu_attacked"`
	GPSAttacked          bool    `json:"gps_attacked"`
	// ActiveKFMode is the KF variant currently trusted for the GPS
	// verdict.
	ActiveKFMode string  `json:"active_kf_mode"`
	RunningError float64 `json:"running_error"`
	PeakError    float64 `json:"peak_error"`
	Threshold    float64 `json:"threshold"`
}

// SessionStatus is the GET /v1/sessions/{id}/status response.
type SessionStatus struct {
	SchemaVersion string `json:"schema_version"`
	ID            string `json:"id"`
	Flight        string `json:"flight"`
	// State is one of the Session* constants.
	State string `json:"state"`
	// AgeSeconds and IdleSeconds are measured against the session's
	// creation and last touch.
	AgeSeconds  float64 `json:"age_seconds"`
	IdleSeconds float64 `json:"idle_seconds"`
	// Shed counts bus messages dropped by backpressure so far.
	Shed int `json:"shed"`
	// LastSeq is the highest frames-request sequence number accepted so
	// far (0 when the client is not using sequence numbers). A client
	// resuming an interrupted upload — including against a restarted
	// server that recovered the session from its journal — reads this to
	// learn where to continue.
	LastSeq int `json:"last_seq"`
	// FailCause records why a failed session died (state "failed" only).
	FailCause string       `json:"fail_cause,omitempty"`
	Engine    EngineStatus `json:"engine"`
}

// JournalAppend is the POST /v1/sessions/{id}/journal/append body — the
// fleet replication stream. The gateway forwards every chunk an owner
// replica acknowledges to R−1 follower replicas as one append each; the
// follower fsyncs the chunk into its follower journal BEFORE answering,
// so the copy survives the follower's own crash. The {id} in the path is
// the replication key (the gateway's session id), which is unique across
// the fleet and never collides with the follower's own session table.
type JournalAppend struct {
	SchemaVersion string `json:"schema_version"`
	// Seq is the append's 1-based position in the session's replication
	// stream — the index of Chunk within the owner's journal, independent
	// of Chunk.Seq (which clients may omit). An append at or below the
	// follower's high-water mark is absorbed as a duplicate; one that
	// skips ahead is rejected with 409 so the gateway knows to reseed the
	// follower from a full export.
	Seq int `json:"seq"`
	// Request is the session's original open request, repeated on every
	// append so a follower can (re)create the copy statelessly.
	Request SessionRequest `json:"request"`
	// Chunk is the acknowledged FramesRequest being replicated, verbatim.
	Chunk FramesRequest `json:"chunk"`
}

// JournalAppendResponse is the POST /v1/sessions/{id}/journal/append
// response.
type JournalAppendResponse struct {
	SchemaVersion string `json:"schema_version"`
	ID            string `json:"id"`
	// LastSeq is the highest replication index durably held after this
	// append (fsynced — the gateway's lag accounting trusts it).
	LastSeq int `json:"last_seq"`
	// Duplicate reports that the append's Seq was already held and
	// nothing was re-written.
	Duplicate bool `json:"duplicate,omitempty"`
}

// SessionJournal is the GET /v1/sessions/{id}/journal response: the
// session's durable write-ahead log — its original SessionRequest plus
// every acknowledged chunk, in acceptance order — packaged as one
// document. It is the fleet handoff format: a gateway migrating a
// session off a draining or dead replica replays Chunks through a
// successor's normal publish path, and because the engine is
// deterministic the successor's verdict is byte-identical to the one the
// original replica would have produced. Requires the server to run with
// journaling enabled.
type SessionJournal struct {
	SchemaVersion string `json:"schema_version"`
	ID            string `json:"id"`
	// Request reopens an equivalent session on the successor.
	Request SessionRequest `json:"request"`
	// State is the session's lifecycle state at export time.
	State string `json:"state"`
	// LastSeq is the highest acknowledged sequence number; Chunks holds
	// exactly the acknowledged prefix, so len(Chunks) chunks replay
	// cleanly into a fresh session.
	LastSeq int `json:"last_seq"`
	// FailCause records why a failed session died (state "failed" only).
	FailCause string `json:"fail_cause,omitempty"`
	// Chunks is the acknowledged chunk stream in acceptance order.
	Chunks []FramesRequest `json:"chunks"`
}
