package api

import (
	"fmt"
	"math"
	"sort"

	"soundboost/internal/dataset"
	"soundboost/internal/faults"
	"soundboost/internal/stream"
)

// ChunkFlight converts a recorded flight into the time-ordered frame
// batches a client posts to POST /v1/sessions/{id}/frames. Audio is cut
// into frameSeconds chunks stamped at capture-complete time (exactly the
// chunking of stream.Replay, so a streamed upload reproduces the batch
// verdict); the flight's timeline is then sliced into consecutive
// requests of chunkSeconds each, with all events carrying an equal
// timestamp kept in one request so the server-side merge preserves the
// replay ordering. The final request has Close set.
//
// frameSeconds <= 0 selects the 50 ms default. chunkSeconds must be
// positive (faults.ErrBadChunk otherwise) — callers wanting the whole
// flight in one request pass a chunk size covering its full duration. A
// nil or empty flight yields faults.ErrNoFlight.
func ChunkFlight(f *dataset.Flight, frameSeconds, chunkSeconds float64) ([]FramesRequest, error) {
	if f == nil || f.Audio == nil || f.Audio.Samples() == 0 {
		return nil, fmt.Errorf("api: nothing to chunk: %w", faults.ErrNoFlight)
	}
	if chunkSeconds <= 0 {
		return nil, fmt.Errorf("%w: got %v", faults.ErrBadChunk, chunkSeconds)
	}
	if frameSeconds <= 0 {
		frameSeconds = 0.05
	}
	rate := f.Audio.SampleRate
	// Shared with stream.Replay: both must cut identical frames (rounded,
	// not truncated) or the replay-identical guarantee breaks.
	frameN := stream.FrameLen(frameSeconds, rate)
	total := f.Audio.Samples()
	duration := float64(total) / rate
	if n := len(f.Telemetry); n > 0 && f.Telemetry[n-1].Time > duration {
		duration = f.Telemetry[n-1].Time
	}
	// Exactly ceil(duration/chunkSeconds) requests of chunkSeconds each.
	// The former int(duration/chunkSeconds)+1 over-counted whenever the
	// duration was an exact multiple of the chunk size, and slicing the
	// duration evenly across that count produced chunks narrower than the
	// caller asked for.
	nChunks := int(math.Ceil(duration / chunkSeconds))
	if nChunks < 1 {
		nChunks = 1
	}
	sliceAt := func(tm float64) int {
		i := int(tm / chunkSeconds)
		if i < 0 {
			i = 0
		}
		if i >= nChunks {
			i = nChunks - 1
		}
		return i
	}

	reqs := make([]FramesRequest, nChunks)
	for o := 0; o < total; o += frameN {
		end := o + frameN
		if end > total {
			end = total
		}
		samples := make([][]float64, len(f.Audio.Channels))
		for m := range samples {
			samples[m] = f.Audio.Channels[m][o:end]
		}
		endT := float64(end) / rate
		i := sliceAt(endT)
		reqs[i].Audio = append(reqs[i].Audio, AudioFrameFromStream(stream.AudioFrame{
			Start: float64(o) / rate, Rate: rate, Samples: samples,
		}))
	}
	for _, s := range f.Telemetry {
		i := sliceAt(s.Time)
		reqs[i].IMU = append(reqs[i].IMU, IMUSampleFromStream(stream.IMUSample{
			Time: s.Time, Accel: s.IMUAccel, Gyro: s.IMUGyro, Att: s.EstAtt,
		}))
		reqs[i].GPS = append(reqs[i].GPS, GPSSampleFromStream(stream.GPSSample{
			Time: s.Time, Pos: s.GPSPos, Vel: s.GPSVel,
		}))
	}
	// Drop empty slices (possible at the tail for coarse chunk sizes),
	// then assert the cross-request invariant: no stream runs backwards
	// across a chunk boundary.
	dense := reqs[:0]
	for _, r := range reqs {
		if len(r.Audio) > 0 || len(r.IMU) > 0 || len(r.GPS) > 0 {
			dense = append(dense, r)
		}
	}
	reqs = dense
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return firstTime(reqs[i]) < firstTime(reqs[j]) }) {
		return nil, fmt.Errorf("api: chunking produced out-of-order requests")
	}
	// Sequence numbers make the upload idempotent: a resent chunk is
	// acknowledged, not re-published, and a journal-recovered session
	// knows exactly which prefix it already holds.
	for i := range reqs {
		reqs[i].Seq = i + 1
	}
	reqs[len(reqs)-1].Close = true
	return reqs, nil
}

// firstTime returns the earliest event timestamp in a (non-empty)
// request.
func firstTime(r FramesRequest) float64 {
	t := 1e300
	if len(r.Audio) > 0 && r.Audio[0].StartSeconds < t {
		t = r.Audio[0].StartSeconds
	}
	if len(r.IMU) > 0 && r.IMU[0].TimeSeconds < t {
		t = r.IMU[0].TimeSeconds
	}
	if len(r.GPS) > 0 && r.GPS[0].TimeSeconds < t {
		t = r.GPS[0].TimeSeconds
	}
	return t
}
