package api

import (
	soundboost "soundboost/internal/core"
	"soundboost/internal/kalman"
	"soundboost/internal/mathx"
	"soundboost/internal/stream"
)

// Conversion between internal structs and wire DTOs lives here and only
// here. Every conversion pair is round-trip tested (api_test.go), so
// internal refactors that would silently change the wire format fail in
// this package instead of in a client.

// ReportFromCore converts an internal RCA report to its wire form.
func ReportFromCore(r soundboost.Report) Report {
	return Report{
		SchemaVersion: Version,
		Flight:        r.Flight,
		Cause:         string(r.Cause),
		IMU: IMUVerdict{
			Attacked:         r.IMU.Attacked,
			DetectionSeconds: r.IMU.DetectionTime,
			WindowsTested:    r.IMU.WindowsTested,
			WindowsRejected:  r.IMU.WindowsRejected,
			AttackStd:        r.IMU.AttackStd,
		},
		GPS: GPSVerdict{
			Attacked:         r.GPS.Attacked,
			DetectionSeconds: r.GPS.DetectionTime,
			PeakError:        r.GPS.PeakError,
			Threshold:        r.GPS.Threshold,
		},
		GPSMode:   string(r.GPSMode),
		Precision: string(r.Precision),
		Tolerance: r.Precision.Tolerance(),
	}
}

// ToCore converts a wire report back to the internal struct.
func (r Report) ToCore() soundboost.Report {
	return soundboost.Report{
		Flight: r.Flight,
		Cause:  soundboost.RootCause(r.Cause),
		IMU: soundboost.IMUVerdict{
			Attacked:        r.IMU.Attacked,
			DetectionTime:   r.IMU.DetectionSeconds,
			WindowsTested:   r.IMU.WindowsTested,
			WindowsRejected: r.IMU.WindowsRejected,
			AttackStd:       r.IMU.AttackStd,
		},
		GPS: soundboost.GPSVerdict{
			Attacked:      r.GPS.Attacked,
			DetectionTime: r.GPS.DetectionSeconds,
			PeakError:     r.GPS.PeakError,
			Threshold:     r.GPS.Threshold,
		},
		GPSMode: kalman.Mode(r.GPSMode),
		// Tolerance is derived from Precision, never stored separately.
		Precision: soundboost.Precision(r.Precision),
	}
}

// EngineStatusFromStream converts a live engine snapshot to its wire
// form.
func EngineStatusFromStream(s stream.Status) EngineStatus {
	return EngineStatus{
		LastWindowEndSeconds: s.LastWindowEnd,
		Windows:              s.Windows,
		Skipped:              s.Skipped,
		IMUAttacked:          s.IMUAttacked,
		GPSAttacked:          s.GPSAttacked,
		ActiveKFMode:         string(s.ActiveMode),
		RunningError:         s.RunningError,
		PeakError:            s.PeakError,
		Threshold:            s.Threshold,
	}
}

// ToStream converts a wire engine status back to the internal struct.
func (s EngineStatus) ToStream() stream.Status {
	return stream.Status{
		LastWindowEnd: s.LastWindowEndSeconds,
		Windows:       s.Windows,
		Skipped:       s.Skipped,
		IMUAttacked:   s.IMUAttacked,
		GPSAttacked:   s.GPSAttacked,
		ActiveMode:    kalman.Mode(s.ActiveKFMode),
		RunningError:  s.RunningError,
		PeakError:     s.PeakError,
		Threshold:     s.Threshold,
	}
}

// vec3FromMathx / toMathx map the 3-vector wire form.
func vec3FromMathx(v mathx.Vec3) Vec3 { return Vec3{X: v.X, Y: v.Y, Z: v.Z} }

// ToMathx converts a wire vector to the internal type.
func (v Vec3) ToMathx() mathx.Vec3 { return mathx.Vec3{X: v.X, Y: v.Y, Z: v.Z} }

func quatFromMathx(q mathx.Quat) Quat { return Quat{W: q.W, X: q.X, Y: q.Y, Z: q.Z} }

// ToMathx converts a wire quaternion to the internal type.
func (q Quat) ToMathx() mathx.Quat { return mathx.Quat{W: q.W, X: q.X, Y: q.Y, Z: q.Z} }

// AudioFrameFromStream converts a stream audio frame to its wire form.
func AudioFrameFromStream(f stream.AudioFrame) AudioFrame {
	return AudioFrame{StartSeconds: f.Start, RateHz: f.Rate, Samples: f.Samples}
}

// ToStream converts a wire audio frame to the engine's input type.
func (f AudioFrame) ToStream() stream.AudioFrame {
	return stream.AudioFrame{Start: f.StartSeconds, Rate: f.RateHz, Samples: f.Samples}
}

// IMUSampleFromStream converts a stream IMU row to its wire form.
func IMUSampleFromStream(s stream.IMUSample) IMUSample {
	return IMUSample{
		TimeSeconds: s.Time,
		Accel:       vec3FromMathx(s.Accel),
		Gyro:        vec3FromMathx(s.Gyro),
		Att:         quatFromMathx(s.Att),
	}
}

// ToStream converts a wire IMU row to the engine's input type.
func (s IMUSample) ToStream() stream.IMUSample {
	return stream.IMUSample{
		Time:  s.TimeSeconds,
		Accel: s.Accel.ToMathx(),
		Gyro:  s.Gyro.ToMathx(),
		Att:   s.Att.ToMathx(),
	}
}

// GPSSampleFromStream converts a stream GPS fix to its wire form.
func GPSSampleFromStream(s stream.GPSSample) GPSSample {
	return GPSSample{TimeSeconds: s.Time, Pos: vec3FromMathx(s.Pos), Vel: vec3FromMathx(s.Vel)}
}

// ToStream converts a wire GPS fix to the engine's input type.
func (s GPSSample) ToStream() stream.GPSSample {
	return stream.GPSSample{Time: s.TimeSeconds, Pos: s.Pos.ToMathx(), Vel: s.Vel.ToMathx()}
}
