package api

import (
	"errors"
	"testing"

	"soundboost/internal/acoustics"
	"soundboost/internal/dataset"
	"soundboost/internal/faults"
)

// tinyFlight builds the smallest flight worth chunking: one second of
// audio plus a few telemetry rows.
func tinyFlight() *dataset.Flight {
	rec := &acoustics.Recording{SampleRate: 100}
	for m := range rec.Channels {
		rec.Channels[m] = make([]float64, 100)
	}
	f := &dataset.Flight{Name: "tiny", Audio: rec}
	for i := 0; i < 10; i++ {
		f.Telemetry = append(f.Telemetry, dataset.TelemetrySample{Time: float64(i) * 0.1})
	}
	return f
}

// TestChunkFlightTypedErrors pins the error contract: callers must be
// able to distinguish "nothing to chunk" from "bad chunk size" with
// errors.Is, not string matching.
func TestChunkFlightTypedErrors(t *testing.T) {
	if _, err := ChunkFlight(nil, 0.05, 1); !errors.Is(err, faults.ErrNoFlight) {
		t.Errorf("nil flight: err = %v, want ErrNoFlight", err)
	}
	empty := &dataset.Flight{Audio: &acoustics.Recording{SampleRate: 100}}
	if _, err := ChunkFlight(empty, 0.05, 1); !errors.Is(err, faults.ErrNoFlight) {
		t.Errorf("empty flight: err = %v, want ErrNoFlight", err)
	}
	f := tinyFlight()
	for _, bad := range []float64{0, -1} {
		if _, err := ChunkFlight(f, 0.05, bad); !errors.Is(err, faults.ErrBadChunk) {
			t.Errorf("chunkSeconds = %v: err = %v, want ErrBadChunk", bad, err)
		}
	}
}

// TestChunkFlightSequenceNumbers requires chunks to carry contiguous
// 1-based sequence numbers with Close on the last — the contract the
// server's idempotent-resend path depends on.
func TestChunkFlightSequenceNumbers(t *testing.T) {
	reqs, err := ChunkFlight(tinyFlight(), 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 2 {
		t.Fatalf("want multiple chunks, got %d", len(reqs))
	}
	for i, r := range reqs {
		if r.Seq != i+1 {
			t.Errorf("chunk %d: seq = %d, want %d", i, r.Seq, i+1)
		}
		if got, want := r.Close, i == len(reqs)-1; got != want {
			t.Errorf("chunk %d: close = %v, want %v", i, got, want)
		}
	}
	// A whole-flight chunk still gets seq 1 + Close.
	one, err := ChunkFlight(tinyFlight(), 0.05, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Seq != 1 || !one[0].Close {
		t.Fatalf("whole-flight chunking: %d chunk(s), seq %d, close %v", len(one), one[0].Seq, one[0].Close)
	}
}
