package api

import (
	"errors"
	"testing"

	"soundboost/internal/acoustics"
	"soundboost/internal/dataset"
	"soundboost/internal/faults"
	"soundboost/internal/stream"
)

// tinyFlight builds the smallest flight worth chunking: one second of
// audio plus a few telemetry rows.
func tinyFlight() *dataset.Flight {
	rec := &acoustics.Recording{SampleRate: 100}
	for m := range rec.Channels {
		rec.Channels[m] = make([]float64, 100)
	}
	f := &dataset.Flight{Name: "tiny", Audio: rec}
	for i := 0; i < 10; i++ {
		f.Telemetry = append(f.Telemetry, dataset.TelemetrySample{Time: float64(i) * 0.1})
	}
	return f
}

// TestChunkFlightTypedErrors pins the error contract: callers must be
// able to distinguish "nothing to chunk" from "bad chunk size" with
// errors.Is, not string matching.
func TestChunkFlightTypedErrors(t *testing.T) {
	if _, err := ChunkFlight(nil, 0.05, 1); !errors.Is(err, faults.ErrNoFlight) {
		t.Errorf("nil flight: err = %v, want ErrNoFlight", err)
	}
	empty := &dataset.Flight{Audio: &acoustics.Recording{SampleRate: 100}}
	if _, err := ChunkFlight(empty, 0.05, 1); !errors.Is(err, faults.ErrNoFlight) {
		t.Errorf("empty flight: err = %v, want ErrNoFlight", err)
	}
	f := tinyFlight()
	for _, bad := range []float64{0, -1} {
		if _, err := ChunkFlight(f, 0.05, bad); !errors.Is(err, faults.ErrBadChunk) {
			t.Errorf("chunkSeconds = %v: err = %v, want ErrBadChunk", bad, err)
		}
	}
}

// TestChunkFlightFrameRounding pins the frame-length fix: the per-frame
// sample count must be the *rounded* frameSeconds×rate product. At 100 Hz
// a 0.29 s frame is 28.999999999999996 samples in float64; truncation cut
// 28-sample frames, silently shifting every frame boundary after the
// first relative to stream.Replay's intent. Both sides now share
// stream.FrameLen, which this test also pins directly.
func TestChunkFlightFrameRounding(t *testing.T) {
	if got := stream.FrameLen(0.29, 100); got != 29 {
		t.Fatalf("stream.FrameLen(0.29, 100) = %d, want 29", got)
	}
	if got := stream.FrameLen(0.0001, 100); got != 1 {
		t.Fatalf("stream.FrameLen floor: got %d, want 1", got)
	}
	reqs, err := ChunkFlight(tinyFlight(), 0.29, 100)
	if err != nil {
		t.Fatal(err)
	}
	var frames []AudioFrame
	for _, r := range reqs {
		frames = append(frames, r.Audio...)
	}
	// 100 samples in 29-sample frames: 29, 29, 29, 13.
	if len(frames) != 4 {
		t.Fatalf("got %d frames, want 4", len(frames))
	}
	for i, f := range frames {
		want := 29
		if i == len(frames)-1 {
			want = 100 - 3*29
		}
		if got := len(f.Samples[0]); got != want {
			t.Errorf("frame %d: %d samples, want %d", i, got, want)
		}
	}
}

// TestChunkFlightExactMultiple pins the chunk-count fix: a flight whose
// duration is an exact multiple of chunkSeconds must produce exactly
// duration/chunkSeconds requests, each spanning the requested chunk
// length. The former int(duration/chunkSeconds)+1 produced one request
// too many and divided the timeline into narrower slices than asked for.
func TestChunkFlightExactMultiple(t *testing.T) {
	f := tinyFlight() // 1 s of audio @ 100 Hz, telemetry every 0.1 s
	for _, tc := range []struct {
		chunkSec float64
		want     int
	}{
		{0.5, 2},
		{0.25, 4},
		{1, 1},
	} {
		reqs, err := ChunkFlight(f, 0.05, tc.chunkSec)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != tc.want {
			t.Errorf("chunkSeconds=%v: %d requests, want %d", tc.chunkSec, len(reqs), tc.want)
		}
		// No request may be empty, and together they must carry the whole
		// flight: 20 audio frames and 10 telemetry rows.
		audio, imu := 0, 0
		for i, r := range reqs {
			if len(r.Audio) == 0 && len(r.IMU) == 0 && len(r.GPS) == 0 {
				t.Errorf("chunkSeconds=%v: request %d is empty", tc.chunkSec, i)
			}
			audio += len(r.Audio)
			imu += len(r.IMU)
		}
		if audio != 20 || imu != 10 {
			t.Errorf("chunkSeconds=%v: carried %d audio frames and %d IMU rows, want 20 and 10",
				tc.chunkSec, audio, imu)
		}
	}
}

// TestChunkFlightSequenceNumbers requires chunks to carry contiguous
// 1-based sequence numbers with Close on the last — the contract the
// server's idempotent-resend path depends on.
func TestChunkFlightSequenceNumbers(t *testing.T) {
	reqs, err := ChunkFlight(tinyFlight(), 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 2 {
		t.Fatalf("want multiple chunks, got %d", len(reqs))
	}
	for i, r := range reqs {
		if r.Seq != i+1 {
			t.Errorf("chunk %d: seq = %d, want %d", i, r.Seq, i+1)
		}
		if got, want := r.Close, i == len(reqs)-1; got != want {
			t.Errorf("chunk %d: close = %v, want %v", i, got, want)
		}
	}
	// A whole-flight chunk still gets seq 1 + Close.
	one, err := ChunkFlight(tinyFlight(), 0.05, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Seq != 1 || !one[0].Close {
		t.Fatalf("whole-flight chunking: %d chunk(s), seq %d, close %v", len(one), one[0].Seq, one[0].Close)
	}
}
