package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// DecodeStrict decodes exactly one JSON value from r into v, rejecting
// unknown fields and trailing garbage. The server uses it for every
// request body so client typos (a misspelled field would otherwise be
// silently zero) and concatenated bodies fail loudly with a 400.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("api: decode: %w", err)
	}
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		return fmt.Errorf("api: decode: trailing data after JSON body")
	}
	return nil
}
