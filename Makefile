GO ?= go

.PHONY: build test race bench verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -w .

# Full gate: gofmt -l (fails on output), go vet, build, race-enabled tests.
verify:
	sh scripts/verify.sh
