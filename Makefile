GO ?= go

.PHONY: build test race bench bench-json bench-gate cover verify verify-short staticcheck fmt live-smoke serve-smoke chaos-smoke sweep-smoke fleet-smoke ha-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# bench-json writes the next BENCH_<n>.json perf artifact: a
# schema-versioned machine-readable report (wall time, per-stage
# timings, allocations, environment) from an instrumented benchtab run.
bench-json:
	@n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	echo "writing BENCH_$$n.json"; \
	$(GO) run ./cmd/benchtab -scale bench -run timing,rca -bench-json BENCH_$$n.json && \
	$(GO) run ./cmd/benchtab -validate-bench BENCH_$$n.json

# bench-gate is the perf-regression gate: a fresh throughput bench
# compared against the newest committed BENCH_<n>.json with
# `benchtab -compare` — fails when flights/sec drops or p99 per-flight
# latency rises by more than 15% (override with MAX_REGRESS=10%). The
# script self-tests on an injected synthetic regression first.
bench-gate:
	sh scripts/bench_gate.sh

# cover produces coverage.out and prints the total; CI publishes the
# per-package summary from the same profile.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
	@echo "full per-function breakdown: $(GO) tool cover -func=coverage.out"

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "warning: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Full gate: gofmt -l (fails on output), go vet, staticcheck (enforced
# in CI), build, race-enabled uncached tests, and the seeded chaos soak.
# verify-short skips the soak (fast edit loop; what CI's verify job runs).
verify:
	sh scripts/verify.sh

verify-short:
	sh scripts/verify.sh -short

# live-smoke exercises the streaming pipeline end to end with the CLI:
# flightgen corpus -> train -> calibrate -> `soundboost live` replay of a
# benign and an attacked flight over the mavbus (reduced-rate, ~seconds).
live-smoke:
	sh scripts/live_smoke.sh

# serve-smoke exercises the multi-session RCA service end to end:
# flightgen corpus -> train -> calibrate -> `soundboost serve`, then the
# same incident flight through offline rca, HTTP batch upload, and a
# chunked streaming session — all three verdicts must be identical.
serve-smoke:
	sh scripts/serve_smoke.sh

# chaos-smoke soaks the service under deterministic fault injection and
# exercises the crash-safe session journal: `soundboost chaos -seed 42`
# twice (byte-identical output required), then a SIGKILL + restart of
# `soundboost serve -journal` that the streaming client must ride
# through without losing an acknowledged chunk.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# sweep-smoke drives the sweep grid runner against a live `soundboost
# serve` instance: the same 3x3 sweep (attack families x chunk sizes,
# seed 42) runs twice over real HTTP, must be byte-identical, and its
# rollup must match a pinned confusion matrix — the CI gate on
# detection accuracy.
sweep-smoke:
	sh scripts/sweep_smoke.sh

# fleet-smoke shards the service across three journaled `soundboost
# serve` replicas behind one consistent-hash `soundboost gateway`,
# SIGKILLs the replica owning the in-flight session, and requires the
# journal-backed handoff to finish the stream on a successor with a
# verdict byte-identical to the single-node run (scripts/fleet_smoke.sh).
# FLEET_BUILDFLAGS=-race builds every binary under the race detector.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# ha-smoke exercises fleet high availability end to end: three journaled
# replicas with journal replication behind a primary gateway (routing
# state checkpointed) plus a warm standby on the same address. Mid-upload
# the owning replica is SIGKILLed AND its journal directory wiped (the
# follower copy must carry the session), then the primary gateway is
# SIGKILLed (the standby must take over from the lease + checkpoint) —
# and the verdict must stay byte-identical to the single-node run
# (scripts/ha_smoke.sh). FLEET_BUILDFLAGS=-race builds every binary
# under the race detector.
ha-smoke:
	sh scripts/ha_smoke.sh

fmt:
	gofmt -w .
