GO ?= go

.PHONY: build test race bench bench-json cover verify staticcheck fmt live-smoke serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# bench-json writes the next BENCH_<n>.json perf artifact: a
# schema-versioned machine-readable report (wall time, per-stage
# timings, allocations, environment) from an instrumented benchtab run.
bench-json:
	@n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	echo "writing BENCH_$$n.json"; \
	$(GO) run ./cmd/benchtab -scale bench -run timing,rca -bench-json BENCH_$$n.json && \
	$(GO) run ./cmd/benchtab -validate-bench BENCH_$$n.json

# cover produces coverage.out and prints the total; CI publishes the
# per-package summary from the same profile.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
	@echo "full per-function breakdown: $(GO) tool cover -func=coverage.out"

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "warning: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Full gate: gofmt -l (fails on output), go vet, staticcheck (enforced
# in CI), build, race-enabled uncached tests.
verify:
	sh scripts/verify.sh

# live-smoke exercises the streaming pipeline end to end with the CLI:
# flightgen corpus -> train -> calibrate -> `soundboost live` replay of a
# benign and an attacked flight over the mavbus (reduced-rate, ~seconds).
live-smoke:
	sh scripts/live_smoke.sh

# serve-smoke exercises the multi-session RCA service end to end:
# flightgen corpus -> train -> calibrate -> `soundboost serve`, then the
# same incident flight through offline rca, HTTP batch upload, and a
# chunked streaming session — all three verdicts must be identical.
serve-smoke:
	sh scripts/serve_smoke.sh

fmt:
	gofmt -w .
